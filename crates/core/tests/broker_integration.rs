//! End-to-end broker tests on the paper's Figure-8 topology.

use bb_core::admission::aggregate::ClassSpec;
use bb_core::contingency::ContingencyPolicy;
use bb_core::policy::Policy;
use bb_core::{Broker, BrokerConfig, FlowRequest, Reject, ServiceKind};
use netsim::topology::{LinkId, SchedulerSpec, Topology, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

/// The Figure-8 topology. Returns (topology, S1→D1 route, S2→D2 route)
/// as link-id lists for the *core* part (ingress through egress).
fn figure8(mixed: bool) -> (Topology, Vec<LinkId>, Vec<LinkId>) {
    let mut b = TopologyBuilder::new();
    let i1 = b.node("I1");
    let i2 = b.node("I2");
    let r2 = b.node("R2");
    let r3 = b.node("R3");
    let r4 = b.node("R4");
    let r5 = b.node("R5");
    let e1 = b.node("E1");
    let e2 = b.node("E2");
    let cap = Rate::from_bps(1_500_000);
    let lmax = Bits::from_bytes(1500);
    let cs = SchedulerSpec::CsVc;
    let ed = if mixed {
        SchedulerSpec::VtEdf
    } else {
        SchedulerSpec::CsVc
    };
    // Mixed setting (§5): CsVC on I1→R2, I2→R2, R2→R3, R5→E1;
    // VT-EDF on R3→R4, R4→R5, R5→E2.
    let l_i1r2 = b.link(i1, r2, cap, Nanos::ZERO, cs, lmax);
    let l_i2r2 = b.link(i2, r2, cap, Nanos::ZERO, cs, lmax);
    let l_r2r3 = b.link(r2, r3, cap, Nanos::ZERO, cs, lmax);
    let l_r3r4 = b.link(r3, r4, cap, Nanos::ZERO, ed, lmax);
    let l_r4r5 = b.link(r4, r5, cap, Nanos::ZERO, ed, lmax);
    let l_r5e1 = b.link(r5, e1, cap, Nanos::ZERO, cs, lmax);
    let l_r5e2 = b.link(r5, e2, cap, Nanos::ZERO, ed, lmax);
    let p1 = vec![l_i1r2, l_r2r3, l_r3r4, l_r4r5, l_r5e1];
    let p2 = vec![l_i2r2, l_r2r3, l_r3r4, l_r4r5, l_r5e2];
    (b.build(), p1, p2)
}

fn broker(mixed: bool, contingency: ContingencyPolicy) -> (Broker, bb_core::mib::PathId) {
    let (topo, p1, _) = figure8(mixed);
    let mut broker = Broker::new(
        topo,
        BrokerConfig {
            policy: Policy::allow_all(),
            contingency,
            classes: vec![
                ClassSpec {
                    id: 0,
                    d_req: Nanos::from_millis(2_440),
                    cd: Nanos::from_millis(240),
                },
                ClassSpec {
                    id: 1,
                    d_req: Nanos::from_millis(2_190),
                    cd: Nanos::from_millis(100),
                },
            ],
        },
    );
    let pid = broker.register_route(&p1);
    (broker, pid)
}

fn per_flow_request(flow: u64, pid: bb_core::mib::PathId, d_ms: u64) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: type0(),
        d_req: Nanos::from_millis(d_ms),
        service: ServiceKind::PerFlow,
        path: pid,
    }
}

fn class_request(flow: u64, pid: bb_core::mib::PathId, class: u32) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: type0(),
        d_req: Nanos::ZERO, // the class bound governs
        service: ServiceKind::Class(class),
        path: pid,
    }
}

#[test]
fn per_flow_table2_counts_through_broker() {
    for (mixed, d_ms, expected) in [
        (false, 2_440u64, 30),
        (false, 2_190, 27),
        (true, 2_440, 30),
        (true, 2_190, 27),
    ] {
        let (mut broker, pid) = broker(mixed, ContingencyPolicy::Bounding);
        let mut n = 0u64;
        while broker
            .request(Time::ZERO, &per_flow_request(n, pid, d_ms))
            .is_ok()
        {
            n += 1;
            assert!(n <= 40);
        }
        assert_eq!(
            n, expected,
            "mixed={mixed} D={d_ms}ms admitted {n}, expected {expected}"
        );
        assert_eq!(broker.stats().admitted, expected);
    }
}

#[test]
fn released_capacity_is_reusable() {
    let (mut broker, pid) = broker(true, ContingencyPolicy::Bounding);
    let mut n = 0u64;
    while broker
        .request(Time::ZERO, &per_flow_request(n, pid, 2_440))
        .is_ok()
    {
        n += 1;
    }
    assert_eq!(n, 30);
    // Release 5 flows, re-admit 5.
    for f in 0..5 {
        broker.release(Time::ZERO, FlowId(f)).unwrap();
    }
    for f in 100..105 {
        broker
            .request(Time::ZERO, &per_flow_request(f, pid, 2_440))
            .unwrap();
    }
    assert!(broker
        .request(Time::ZERO, &per_flow_request(200, pid, 2_440))
        .is_err());
}

#[test]
fn duplicate_flow_ids_are_rejected() {
    let (mut broker, pid) = broker(false, ContingencyPolicy::Bounding);
    broker
        .request(Time::ZERO, &per_flow_request(1, pid, 2_440))
        .unwrap();
    assert_eq!(
        broker.request(Time::ZERO, &per_flow_request(1, pid, 2_440)),
        Err(Reject::DuplicateFlow)
    );
}

#[test]
fn class_joins_admit_29_with_infinite_lifetimes() {
    // Table 2, Aggr BB/VTRS, rate-based setting, D = 2.44 s: 29 calls.
    // Infinite lifetimes: each contingency period ends before the next
    // arrival, modeled by ticking past the expiry between requests.
    let (mut broker, pid) = broker(false, ContingencyPolicy::Bounding);
    let mut now = Time::ZERO;
    let mut n = 0u64;
    loop {
        match broker.request(now, &class_request(n, pid, 0)) {
            Ok(res) => {
                n += 1;
                assert!(n <= 40);
                if let Some(exp) = res.contingency_expires {
                    now = exp + Nanos::from_nanos(1);
                    broker.tick(now);
                }
            }
            Err(Reject::Bandwidth) => break,
            Err(e) => panic!("unexpected rejection {e}"),
        }
    }
    assert_eq!(n, 29);
    let m = broker.macroflow(0, pid).expect("macroflow exists");
    assert_eq!(m.members, 29);
    assert_eq!(m.reserved, Rate::from_bps(29 * 50_000));
    assert!(m.contingency.is_empty());
    // One macroflow serves 29 microflows: the per-path QoS state the BB
    // holds for the class is O(1), not O(flows).
    assert_eq!(broker.flows().len(), 29);
}

#[test]
fn contingency_holds_bandwidth_until_expiry() {
    let (mut broker, pid) = broker(false, ContingencyPolicy::Bounding);
    let res1 = broker
        .request(Time::ZERO, &class_request(0, pid, 0))
        .unwrap();
    assert_eq!(res1.contingency, Rate::ZERO); // fresh macroflow
    let res2 = broker
        .request(Time::ZERO, &class_request(1, pid, 0))
        .unwrap();
    // Join of a type-0 flow: increment ρ = 50 kb/s, contingency P − ρ.
    assert_eq!(res2.rate, Rate::from_bps(100_000));
    assert_eq!(res2.contingency, Rate::from_bps(50_000));
    let expires = res2
        .contingency_expires
        .expect("bounding policy sets a timer");
    // While the grant is active, the path carries rate + contingency.
    let m = broker.macroflow(0, pid).unwrap();
    assert_eq!(m.allocated(), Rate::from_bps(150_000));
    assert_eq!(broker.path_residual(pid), Rate::from_bps(1_350_000));
    // Nothing expires early.
    assert!(broker.tick(expires - Nanos::from_nanos(1)).is_empty());
    // At the timer, the grant is returned.
    let released = broker.tick(expires);
    assert_eq!(released.len(), 1);
    assert_eq!(released[0].1, Rate::from_bps(50_000));
    assert_eq!(broker.path_residual(pid), Rate::from_bps(1_400_000));
}

#[test]
fn feedback_policy_releases_on_edge_report() {
    let (mut broker, pid) = broker(false, ContingencyPolicy::Feedback);
    broker
        .request(Time::ZERO, &class_request(0, pid, 0))
        .unwrap();
    let res = broker
        .request(Time::ZERO, &class_request(1, pid, 0))
        .unwrap();
    assert_eq!(res.contingency_expires, None);
    let macro_id = res.conditioned_flow;
    // No timer will ever fire…
    assert!(broker.tick(Time::from_secs_f64(1e6)).is_empty());
    // …but the edge reporting an empty buffer resets everything.
    let released = broker.edge_buffer_empty(Time::from_secs_f64(1.0), macro_id);
    assert_eq!(released, Rate::from_bps(50_000));
    assert_eq!(broker.path_residual(pid), Rate::from_bps(1_400_000));
}

#[test]
fn leave_keeps_allocation_through_contingency_then_shrinks() {
    let (mut broker, pid) = broker(false, ContingencyPolicy::Bounding);
    let mut now = Time::ZERO;
    for f in 0..3u64 {
        let res = broker.request(now, &class_request(f, pid, 0)).unwrap();
        if let Some(exp) = res.contingency_expires {
            now = exp + Nanos::from_nanos(1);
            broker.tick(now);
        }
    }
    assert_eq!(broker.path_residual(pid), Rate::from_bps(1_350_000));
    // A member leaves: allocation unchanged during the leave transient.
    let res = broker
        .release(now, FlowId(1))
        .unwrap()
        .expect("class member");
    assert_eq!(res.rate, Rate::from_bps(100_000)); // new reserved
    assert_eq!(res.contingency, Rate::from_bps(50_000));
    assert_eq!(broker.path_residual(pid), Rate::from_bps(1_350_000));
    // After expiry the decrement is returned.
    let exp = res.contingency_expires.unwrap();
    broker.tick(exp);
    assert_eq!(broker.path_residual(pid), Rate::from_bps(1_400_000));
    let m = broker.macroflow(0, pid).unwrap();
    assert_eq!(m.members, 2);
    assert_eq!(m.reserved, Rate::from_bps(100_000));
}

#[test]
fn macroflow_dissolves_after_last_leave() {
    let (mut broker, pid) = broker(true, ContingencyPolicy::Bounding);
    broker
        .request(Time::ZERO, &class_request(0, pid, 0))
        .unwrap();
    let res = broker.release(Time::ZERO, FlowId(0)).unwrap().unwrap();
    assert_eq!(res.rate, Rate::ZERO);
    // Still allocated during the leave contingency…
    assert!(broker.macroflow(0, pid).is_some());
    assert_eq!(broker.path_residual(pid), Rate::from_bps(1_450_000));
    // …then fully torn down.
    broker.tick(res.contingency_expires.unwrap());
    assert!(broker.macroflow(0, pid).is_none());
    assert_eq!(broker.path_residual(pid), Rate::from_bps(1_500_000));
    // The EDF entry is gone too: a tight per-flow request that needs the
    // full link passes again.
    let mut n = 0u64;
    while broker
        .request(Time::ZERO, &per_flow_request(100 + n, pid, 2_440))
        .is_ok()
    {
        n += 1;
    }
    assert_eq!(n, 30);
}

#[test]
fn classes_on_mixed_path_respect_edf() {
    // Class 1 (D = 2.19 s, cd = 100 ms) on the mixed path: joins must
    // pass the EDF checks at the VT-EDF hops.
    let (mut broker, pid) = broker(true, ContingencyPolicy::Bounding);
    let mut now = Time::ZERO;
    let mut n = 0u64;
    loop {
        match broker.request(now, &class_request(n, pid, 1)) {
            Ok(res) => {
                n += 1;
                assert!(n <= 40);
                if let Some(exp) = res.contingency_expires {
                    now = exp + Nanos::from_nanos(1);
                    broker.tick(now);
                }
            }
            Err(Reject::Bandwidth | Reject::Schedulability) => break,
            Err(e) => panic!("unexpected rejection {e}"),
        }
    }
    // Table 2: 29 calls for cd ∈ {0.10, 0.24} at 2.19 s.
    assert_eq!(n, 29);
}

#[test]
fn unknown_class_is_rejected() {
    let (mut broker, pid) = broker(false, ContingencyPolicy::Bounding);
    assert_eq!(
        broker.request(Time::ZERO, &class_request(0, pid, 9)),
        Err(Reject::UnknownClass)
    );
}

#[test]
fn policy_rejections_precede_resource_tests() {
    let (topo, p1, _) = figure8(false);
    let mut broker = Broker::new(
        topo,
        BrokerConfig {
            policy: Policy {
                max_flows: Some(2),
                ..Policy::default()
            },
            contingency: ContingencyPolicy::Bounding,
            classes: vec![],
        },
    );
    let pid = broker.register_route(&p1);
    broker
        .request(Time::ZERO, &per_flow_request(0, pid, 2_440))
        .unwrap();
    broker
        .request(Time::ZERO, &per_flow_request(1, pid, 2_440))
        .unwrap();
    assert_eq!(
        broker.request(Time::ZERO, &per_flow_request(2, pid, 2_440)),
        Err(Reject::Policy)
    );
    assert_eq!(broker.stats().rejected_policy, 1);
}

#[test]
fn path_selection_uses_shortest_route() {
    let (topo, _, _) = figure8(false);
    let i1 = topo.node_by_name("I1").unwrap();
    let e1 = topo.node_by_name("E1").unwrap();
    let mut broker = Broker::new(topo, BrokerConfig::default());
    let pid = broker.path_between(i1, e1).expect("reachable");
    let path = broker.paths().path(pid);
    assert_eq!(path.spec.h(), 5);
    // Cached on second query.
    assert_eq!(broker.path_between(i1, e1), Some(pid));
}

#[test]
fn two_source_paths_share_core_links() {
    // S1→D1 and S2→D2 share R2→R3→R4→R5: admissions on one path reduce
    // the other's residual.
    let (topo, p1, p2) = figure8(false);
    let mut broker = Broker::new(topo, BrokerConfig::default());
    let pid1 = broker.register_route(&p1);
    let pid2 = broker.register_route(&p2);
    broker
        .request(Time::ZERO, &per_flow_request(0, pid1, 2_440))
        .unwrap();
    assert_eq!(broker.path_residual(pid2), Rate::from_bps(1_450_000));
}

#[test]
fn downed_link_blocks_new_admissions_but_not_teardown() {
    // A link failure marks the link down: every path crossing it stops
    // admitting, existing reservations ride out the outage (and may
    // still release), and restoring the link restores admissions.
    let (topo, p1, p2) = figure8(false);
    let mut broker = Broker::new(topo, BrokerConfig::default());
    let pid1 = broker.register_route(&p1);
    let pid2 = broker.register_route(&p2);
    broker
        .request(Time::ZERO, &per_flow_request(0, pid1, 2_440))
        .unwrap();

    // Fail the shared core link R2→R3 (p1[1] — LinkRef mirrors LinkId).
    let shared = bb_core::mib::LinkRef(p1[1].0);
    assert!(broker.link_up(shared));
    broker.set_link_state(shared, false);
    assert!(!broker.link_up(shared));

    // Both paths cross the downed link: no residual, no admissions.
    assert_eq!(broker.path_residual(pid1), Rate::ZERO);
    assert_eq!(broker.path_residual(pid2), Rate::ZERO);
    assert_eq!(
        broker.request(Time::ZERO, &per_flow_request(1, pid1, 2_440)),
        Err(Reject::Bandwidth)
    );
    assert_eq!(
        broker.request(Time::ZERO, &per_flow_request(2, pid2, 2_440)),
        Err(Reject::Bandwidth)
    );

    // The resident flow's state survives the outage and releases cleanly.
    broker.release(Time::ZERO, FlowId(0)).unwrap();

    // Repair: the full capacity is admissible again on both paths.
    broker.set_link_state(shared, true);
    assert!(broker.link_up(shared));
    assert_eq!(broker.path_residual(pid1), Rate::from_bps(1_500_000));
    broker
        .request(Time::ZERO, &per_flow_request(3, pid1, 2_440))
        .unwrap();
    broker
        .request(Time::ZERO, &per_flow_request(4, pid2, 2_440))
        .unwrap();
}

#[test]
fn link_failure_spares_disjoint_paths() {
    // Failing an edge link only stops paths that cross it; the disjoint
    // route keeps its full residual (the epoch bump is local).
    let (topo, p1, p2) = figure8(false);
    let mut broker = Broker::new(topo, BrokerConfig::default());
    let pid1 = broker.register_route(&p1);
    let pid2 = broker.register_route(&p2);
    // p1[0] is I1→R2: only p1 crosses it.
    broker.set_link_state(bb_core::mib::LinkRef(p1[0].0), false);
    assert_eq!(broker.path_residual(pid1), Rate::ZERO);
    assert_eq!(broker.path_residual(pid2), Rate::from_bps(1_500_000));
    broker
        .request(Time::ZERO, &per_flow_request(0, pid2, 2_440))
        .unwrap();
    assert_eq!(
        broker.request(Time::ZERO, &per_flow_request(1, pid1, 2_440)),
        Err(Reject::Bandwidth)
    );
}

#[test]
fn join_during_dissolution_creates_an_independent_successor() {
    // A new microflow arrives while the previous macroflow of the same
    // (class, path) is still draining its leave contingency: the broker
    // must serve it with a fresh macroflow, and the old one's eventual
    // teardown must not orphan the successor's registry entry.
    let (mut broker, pid) = broker(false, ContingencyPolicy::Bounding);
    broker
        .request(Time::ZERO, &class_request(0, pid, 0))
        .unwrap();
    let leave = broker.release(Time::ZERO, FlowId(0)).unwrap().unwrap();
    let old_macro = leave.conditioned_flow;
    // Old macroflow still allocated (dissolving).
    assert!(broker.macroflow_by_id(old_macro).is_some());

    // Join during the dissolution.
    let res = broker
        .request(Time::ZERO, &class_request(1, pid, 0))
        .unwrap();
    let new_macro = res.conditioned_flow;
    assert_ne!(new_macro, old_macro);
    assert_eq!(broker.macroflow(0, pid).unwrap().id, new_macro);

    // Old macroflow tears down; the successor must stay registered.
    broker.tick(leave.contingency_expires.unwrap());
    assert!(broker.macroflow_by_id(old_macro).is_none());
    let m = broker
        .macroflow(0, pid)
        .expect("successor still registered");
    assert_eq!(m.id, new_macro);
    assert_eq!(m.members, 1);

    // And a further join lands in the successor, not a third macroflow.
    let res2 = broker
        .request(Time::ZERO, &class_request(2, pid, 0))
        .unwrap();
    assert_eq!(res2.conditioned_flow, new_macro);
    assert_eq!(broker.macroflow(0, pid).unwrap().members, 2);
}
