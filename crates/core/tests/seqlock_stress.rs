//! Torn-read stress test for the seqlock summary cells.
//!
//! Many writer threads publish summaries into one shared
//! [`SummaryCell`] while many reader threads continuously snapshot it.
//! Every published summary is built so that **all** of its fields are
//! deterministic functions of its epoch; a reader that ever observes a
//! summary violating those relations has seen a torn snapshot — fields
//! mixed from two different publications — which is exactly what the
//! seqlock protocol must make impossible. Retries (odd sequence word,
//! sequence moved mid-read) are expected under contention and are
//! merely counted; an inconsistent *successful* read fails the test.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bb_core::mib::{DelaySummary, PathSummary};
use bb_core::summary::{SummaryCell, MAX_BREAKPOINTS};
use qos_units::{Nanos, Rate};

const WRITERS: usize = 4;
const READERS: usize = 4;
const PUBLISHES_PER_WRITER: u64 = 25_000;

/// A delay-flavoured summary in which every field is derived from `k`:
/// any mix of fields from two different `k` values breaks at least one
/// of the relations checked by [`check_delay_summary`].
fn delay_summary_for(k: u64) -> PathSummary {
    let m = (k as usize % MAX_BREAKPOINTS) + 1;
    PathSummary {
        epoch: k,
        c_res: Rate::from_bps(3 * k + 1),
        delay: Some(DelaySummary {
            breakpoints: (0..m as u64)
                .map(|j| Nanos::from_nanos(k + j + 1))
                .collect(),
            s_bar: (0..m as i128).map(|j| i128::from(k) * 7 + j).collect(),
            min_capacity: Rate::from_bps(5 * k + 2),
        }),
    }
}

fn check_delay_summary(s: &PathSummary) {
    let k = s.epoch;
    assert_eq!(
        s.c_res.as_bps(),
        3 * k + 1,
        "torn read: c_res does not match epoch {k}"
    );
    let delay = s
        .delay
        .as_ref()
        .unwrap_or_else(|| panic!("torn read: delay summary missing at epoch {k}"));
    let m = (k as usize % MAX_BREAKPOINTS) + 1;
    assert_eq!(
        delay.breakpoints.len(),
        m,
        "torn read: breakpoint count does not match epoch {k}"
    );
    assert_eq!(
        delay.s_bar.len(),
        m,
        "torn read: s_bar length does not match epoch {k}"
    );
    for (j, bp) in delay.breakpoints.iter().enumerate() {
        assert_eq!(
            bp.as_nanos(),
            k + j as u64 + 1,
            "torn read: breakpoint {j} does not match epoch {k}"
        );
    }
    for (j, s_bar) in delay.s_bar.iter().enumerate() {
        assert_eq!(
            *s_bar,
            i128::from(k) * 7 + j as i128,
            "torn read: s_bar[{j}] does not match epoch {k}"
        );
    }
    assert_eq!(
        delay.min_capacity.as_bps(),
        5 * k + 2,
        "torn read: min_capacity does not match epoch {k}"
    );
}

/// Readers hammer `read()` on a cell that writers keep republishing
/// with epoch-derived payloads. Every successful snapshot must be
/// internally consistent. (Epoch *order* is deliberately not asserted:
/// a writer draws its epoch before racing for the sequence word, so a
/// slow writer may publish an older epoch after a newer one — harmless,
/// since stale epochs only make `FastDecideHandle::begin` decline.)
#[test]
fn concurrent_publishes_never_yield_torn_snapshots() {
    let cell = Arc::new(SummaryCell::new());
    let counter = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    assert!(cell.try_publish(&delay_summary_for(0)));

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let cell = Arc::clone(&cell);
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..PUBLISHES_PER_WRITER {
                    let k = counter.fetch_add(1, Ordering::Relaxed) + 1;
                    // A writer losing the even→odd CAS skips its
                    // publication — the protocol's liveness rule, not a
                    // failure.
                    let _ = cell.try_publish(&delay_summary_for(k));
                }
            });
        }
        for _ in 0..READERS {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let retries = AtomicU64::new(0);
                let mut observed = 0u64;
                while !done.load(Ordering::Relaxed) {
                    if let Some(snapshot) = cell.read(&retries) {
                        check_delay_summary(&snapshot);
                        observed += 1;
                    }
                }
                assert!(observed > 0, "reader never saw a consistent snapshot");
            });
        }
        // Writers finish on their own; scope joins would deadlock the
        // readers, so flag them down once all publishes are in.
        scope.spawn({
            let counter = Arc::clone(&counter);
            let done = Arc::clone(&done);
            move || {
                while counter.load(Ordering::Relaxed) < WRITERS as u64 * PUBLISHES_PER_WRITER {
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Relaxed);
            }
        });
    });
}

/// Same protocol through the rate-only fast-path probe: `read_rate`
/// snapshots `(epoch, C_res)` and the pair must always satisfy the
/// writer's relation.
#[test]
fn concurrent_publishes_never_tear_the_rate_probe() {
    let cell = Arc::new(SummaryCell::new());
    let counter = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let rate_summary = |k: u64| PathSummary {
        epoch: k,
        c_res: Rate::from_bps(3 * k + 1),
        delay: None,
    };
    assert!(cell.try_publish(&rate_summary(0)));

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let cell = Arc::clone(&cell);
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..PUBLISHES_PER_WRITER {
                    let k = counter.fetch_add(1, Ordering::Relaxed) + 1;
                    let _ = cell.try_publish(&rate_summary(k));
                }
            });
        }
        for _ in 0..READERS {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let retries = AtomicU64::new(0);
                let mut observed = 0u64;
                while !done.load(Ordering::Relaxed) {
                    if let Some((epoch, c_res)) = cell.read_rate(&retries) {
                        assert_eq!(
                            c_res.as_bps(),
                            3 * epoch + 1,
                            "torn read: (epoch, c_res) pair mixes two publications"
                        );
                        observed += 1;
                    }
                }
                assert!(observed > 0, "reader never saw a consistent snapshot");
            });
        }
        scope.spawn({
            let counter = Arc::clone(&counter);
            let done = Arc::clone(&done);
            move || {
                while counter.load(Ordering::Relaxed) < WRITERS as u64 * PUBLISHES_PER_WRITER {
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Relaxed);
            }
        });
    });
}
