//! The full control conversation over COPS frames: the "edge" and the
//! broker exchange nothing but encoded bytes, end to end.

use bb_core::admission::aggregate::ClassSpec;
use bb_core::contingency::ContingencyPolicy;
use bb_core::cops;
use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bytes::Bytes;
use netsim::topology::{SchedulerSpec, TopologyBuilder};
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn domain() -> (Broker, bb_core::mib::PathId) {
    let mut b = TopologyBuilder::new();
    let n: Vec<_> = (0..6).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<_> = (0..5)
        .map(|i| {
            b.link(
                n[i],
                n[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let mut broker = Broker::new(
        b.build(),
        BrokerConfig {
            contingency: ContingencyPolicy::Feedback,
            classes: vec![ClassSpec {
                id: 0,
                d_req: Nanos::from_millis(2_440),
                cd: Nanos::from_millis(240),
            }],
            ..BrokerConfig::default()
        },
    );
    let pid = broker.register_route(&route);
    (broker, pid)
}

/// The broker side of the wire: decode a frame, act, encode the reply.
fn pdp_handle(broker: &mut Broker, now: Time, wire: Bytes) -> Option<Bytes> {
    let mut buf = wire;
    let frame = cops::decode_frame(&mut buf).expect("well-formed frame");
    match frame.op {
        cops::OpCode::Request => {
            let req = cops::decode_request(&frame).expect("valid REQ");
            Some(match broker.request(now, &req) {
                Ok(res) => cops::encode_decision_install(&res),
                Err(cause) => cops::encode_decision_reject(req.flow, cause),
            })
        }
        cops::OpCode::DeleteRequest => {
            let flow = cops::decode_delete(&frame).expect("valid DRQ");
            let _ = broker.release(now, flow);
            None
        }
        cops::OpCode::Report => {
            let (macroflow, at) = cops::decode_buffer_empty(&frame).expect("valid RPT");
            broker.edge_buffer_empty(at, macroflow);
            None
        }
        _ => None,
    }
}

#[test]
fn admission_over_the_wire_matches_direct_calls() {
    let (mut broker, pid) = domain();
    let mut admitted = 0u64;
    loop {
        let req = FlowRequest {
            flow: FlowId(admitted),
            profile: type0(),
            d_req: Nanos::from_millis(2_440),
            service: ServiceKind::PerFlow,
            path: pid,
        };
        let wire = cops::encode_request(&req);
        let reply = pdp_handle(&mut broker, Time::ZERO, wire).expect("REQ gets a DEC");
        let mut buf = reply;
        let frame = cops::decode_frame(&mut buf).unwrap();
        match cops::decode_decision(&frame).unwrap() {
            cops::Decision::Install(res) => {
                assert_eq!(res.flow, FlowId(admitted));
                assert_eq!(res.rate, Rate::from_bps(50_000));
                admitted += 1;
            }
            cops::Decision::Reject { cause, .. } => {
                assert_eq!(cause, bb_core::signaling::Reject::Bandwidth);
                break;
            }
            cops::Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
        }
        assert!(admitted <= 40);
    }
    assert_eq!(admitted, 30, "Table 2 over the wire");

    // Departures over DRQ free the capacity.
    for f in 0..5u64 {
        pdp_handle(&mut broker, Time::ZERO, cops::encode_delete(FlowId(f)));
    }
    assert_eq!(broker.path_residual(pid), Rate::from_bps(250_000));
}

#[test]
fn class_feedback_over_rpt_releases_contingency() {
    let (mut broker, pid) = domain();
    for f in 0..2u64 {
        let req = FlowRequest {
            flow: FlowId(f),
            profile: type0(),
            d_req: Nanos::ZERO,
            service: ServiceKind::Class(0),
            path: pid,
        };
        pdp_handle(&mut broker, Time::ZERO, cops::encode_request(&req)).unwrap();
    }
    let m = broker.macroflow(0, pid).unwrap();
    assert_eq!(m.contingency.total(), Rate::from_bps(50_000));
    let macro_id = m.id;
    // The edge's buffer-empty report, as bytes.
    pdp_handle(
        &mut broker,
        Time::from_secs_f64(2.0),
        cops::encode_buffer_empty(macro_id, Time::from_secs_f64(2.0)),
    );
    assert_eq!(
        broker.macroflow(0, pid).unwrap().contingency.total(),
        Rate::ZERO
    );
}

proptest! {
    /// No byte-level corruption of a valid frame can panic the decoder —
    /// it either still decodes (bytes outside checked fields) or errors.
    #[test]
    fn decoder_survives_corruption(flip_at in 0usize..120, flip_to in any::<u8>()) {
        let req = FlowRequest {
            flow: FlowId(7),
            profile: type0(),
            d_req: Nanos::from_millis(2_440),
            service: ServiceKind::Class(0),
            path: bb_core::mib::PathId(1),
        };
        let wire = cops::encode_request(&req);
        prop_assume!(flip_at < wire.len());
        let mut corrupted = wire.to_vec();
        corrupted[flip_at] = flip_to;
        let mut buf = Bytes::from(corrupted);
        // Must not panic; decoding the frame and, if that succeeds, the
        // request, may fail gracefully or succeed with altered fields.
        if let Ok(frame) = cops::decode_frame(&mut buf) {
            let _ = cops::decode_request(&frame);
        }
    }
}
