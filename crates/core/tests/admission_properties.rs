//! Property tests for the admission algorithms.
//!
//! The Figure-4 algorithm claims two things about every grant: it is
//! *feasible* (exactly verified against the MIBs) and *rate-minimal*
//! (no pair with a smaller rate is feasible at any delay). These tests
//! exercise both over randomized paths, load states and requests, plus
//! MIB bookkeeping reversibility.

use bb_core::admission::{mixed, rate_based};
use bb_core::mib::{LinkQos, NodeMib, PathId, PathMib};
use bb_core::signaling::Reject;
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate};
use vtrs::profile::TrafficProfile;
use vtrs::reference::HopKind;

/// A randomized flow request.
#[derive(Debug, Clone)]
struct GenReq {
    profile: TrafficProfile,
    d_req: Nanos,
}

fn gen_request() -> impl Strategy<Value = GenReq> {
    (
        20_000u64..80_000,  // ρ
        1u64..4,            // P multiplier
        20_000u64..200_000, // σ extra over Lmax
        500u64..6_000,      // D_req ms
    )
        .prop_map(|(rho, pk, sigma_extra, d_ms)| GenReq {
            profile: TrafficProfile::new(
                Bits::from_bits(12_000 + sigma_extra),
                Rate::from_bps(rho),
                Rate::from_bps(rho * (1 + pk)),
                Bits::from_bytes(1500),
            )
            .expect("generated profile is valid"),
            d_req: Nanos::from_millis(d_ms),
        })
}

fn gen_path() -> impl Strategy<Value = Vec<HopKind>> {
    prop::collection::vec(
        prop_oneof![Just(HopKind::RateBased), Just(HopKind::DelayBased)],
        2..7,
    )
}

fn build(kinds: &[HopKind]) -> (NodeMib, PathMib, PathId) {
    let mut nodes = NodeMib::new();
    let refs: Vec<_> = kinds
        .iter()
        .map(|k| {
            nodes.add_link(LinkQos::new(
                Rate::from_bps(2_000_000),
                *k,
                Nanos::from_millis(6),
                Nanos::ZERO,
                Bits::from_bytes(1500),
            ))
        })
        .collect();
    let mut paths = PathMib::new();
    let pid = paths.register(&nodes, refs);
    (nodes, paths, pid)
}

fn book(nodes: &mut NodeMib, paths: &PathMib, pid: PathId, r: Rate, d: Nanos, l: Bits) {
    for link in paths.path(pid).links.clone() {
        nodes.link_mut(link).reserve(r);
        if nodes.link(link).kind == HopKind::DelayBased {
            nodes.link_mut(link).add_edf(r, d, l);
        }
    }
}

fn unbook(nodes: &mut NodeMib, paths: &PathMib, pid: PathId, r: Rate, d: Nanos, l: Bits) {
    for link in paths.path(pid).links.clone() {
        nodes.link_mut(link).release(r);
        if nodes.link(link).kind == HopKind::DelayBased {
            nodes.link_mut(link).remove_edf(r, d, l);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every grant verifies exactly, and one bps less is infeasible at
    /// every candidate delay (the Theorem-1 minimality claim).
    #[test]
    fn grants_are_feasible_and_minimal(
        kinds in gen_path(),
        reqs in prop::collection::vec(gen_request(), 1..14),
    ) {
        let (mut nodes, paths, pid) = build(&kinds);
        for req in &reqs {
            let result = mixed::admit(&req.profile, req.d_req, paths.path(pid), &nodes);
            let Ok(pair) = result else { continue };
            // Exact feasibility.
            prop_assert!(
                mixed::verify(&req.profile, req.d_req, pair.rate, pair.delay,
                              paths.path(pid), &nodes),
                "grant failed exact verification: {pair:?}"
            );
            // Minimality: r − 1 must fail at the granted delay, at every
            // breakpoint, and on a grid over the budget.
            if pair.rate.as_bps() > req.profile.rho.as_bps() {
                let lower = Rate::from_bps(pair.rate.as_bps() - 1);
                let mut candidates: Vec<Nanos> =
                    paths.path(pid).distinct_delays(&nodes);
                candidates.push(pair.delay);
                for k in 0..=40u64 {
                    candidates.push(Nanos::from_nanos(
                        req.d_req.as_nanos() / 40 * k,
                    ));
                }
                for d in candidates {
                    prop_assert!(
                        !mixed::verify(&req.profile, req.d_req, lower, d,
                                       paths.path(pid), &nodes),
                        "rate {lower} feasible at d={d}, but grant was {pair:?}"
                    );
                }
            }
            book(&mut nodes, &paths, pid, pair.rate, pair.delay, req.profile.l_max);
        }
    }

    /// Booking then releasing a grant restores the exact residual
    /// bandwidth and residual service at every probe horizon.
    #[test]
    fn bookkeeping_is_reversible(
        kinds in gen_path(),
        reqs in prop::collection::vec(gen_request(), 1..10),
    ) {
        let (mut nodes, paths, pid) = build(&kinds);
        // Fill in some base load first.
        let mut base = Vec::new();
        for req in &reqs {
            if let Ok(pair) = mixed::admit(&req.profile, req.d_req, paths.path(pid), &nodes) {
                book(&mut nodes, &paths, pid, pair.rate, pair.delay, req.profile.l_max);
                base.push((pair, req.profile.l_max));
            }
        }
        let probes: Vec<Nanos> = (1..=8).map(|k| Nanos::from_millis(25 * k)).collect();
        let residual_before = paths.path(pid).residual(&nodes);
        let service_before: Vec<_> = probes
            .iter()
            .map(|t| paths.path(pid).min_residual_service(&nodes, *t))
            .collect();
        // One more admission, then release it.
        let extra = GenReq {
            profile: TrafficProfile::new(
                Bits::from_bits(60_000),
                Rate::from_bps(30_000),
                Rate::from_bps(90_000),
                Bits::from_bytes(1500),
            ).unwrap(),
            d_req: Nanos::from_millis(4_000),
        };
        if let Ok(pair) = mixed::admit(&extra.profile, extra.d_req, paths.path(pid), &nodes) {
            book(&mut nodes, &paths, pid, pair.rate, pair.delay, extra.profile.l_max);
            prop_assert!(paths.path(pid).residual(&nodes) < residual_before);
            unbook(&mut nodes, &paths, pid, pair.rate, pair.delay, extra.profile.l_max);
        }
        prop_assert_eq!(paths.path(pid).residual(&nodes), residual_before);
        let service_after: Vec<_> = probes
            .iter()
            .map(|t| paths.path(pid).min_residual_service(&nodes, *t))
            .collect();
        prop_assert_eq!(service_before, service_after);
    }

    /// On pure rate-based paths the general algorithm and the O(1) test
    /// agree exactly.
    #[test]
    fn mixed_reduces_to_rate_based(req in gen_request(), hops in 2usize..8) {
        let (nodes, paths, pid) = build(&vec![HopKind::RateBased; hops]);
        let a = mixed::admit(&req.profile, req.d_req, paths.path(pid), &nodes);
        let b = rate_based::admit(&req.profile, req.d_req, paths.path(pid), &nodes);
        match (a, b) {
            (Ok(pair), Ok(range)) => prop_assert_eq!(pair.rate, range.low),
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "disagreement: {a:?} vs {b:?}"),
        }
    }

    /// Admission never grants more than the residual bandwidth, and a
    /// saturated path always rejects with Bandwidth (not a panic, not an
    /// over-grant).
    #[test]
    fn saturation_is_graceful(kinds in gen_path(), req in gen_request()) {
        let (mut nodes, paths, pid) = build(&kinds);
        // Consume almost everything.
        let links = paths.path(pid).links.clone();
        for l in &links {
            let res = nodes.link(*l).residual();
            nodes.link_mut(*l).reserve(res - Rate::from_bps(1_000));
        }
        match mixed::admit(&req.profile, req.d_req, paths.path(pid), &nodes) {
            Ok(pair) => prop_assert!(pair.rate <= Rate::from_bps(1_000)),
            Err(Reject::Bandwidth | Reject::Schedulability | Reject::DelayInfeasible) => {}
            Err(e) => prop_assert!(false, "unexpected rejection {e}"),
        }
    }
}

mod intserv_equivalence {
    use bb_core::intserv::IntServ;
    use bb_core::mib::{LinkQos, NodeMib, PathMib};
    use bb_core::signaling::Reject;
    use netsim::topology::{SchedulerSpec, TopologyBuilder};
    use proptest::prelude::*;
    use qos_units::{Bits, Nanos, Rate};
    use vtrs::profile::TrafficProfile;
    use vtrs::reference::HopKind;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// On rate-based-only paths the GS/WFQ formula and the VTRS
        /// rate-based formula are numerically identical, so the two
        /// control planes must grant the same rate (or reject alike) for
        /// ANY profile and requirement — the analytic fact behind
        /// Table 2's matching columns.
        #[test]
        fn intserv_and_bb_agree_on_rate_based_paths(
            rho in 10_000u64..100_000,
            peak_mult in 1u64..5,
            sigma_extra in 1u64..200_000,
            d_ms in 100u64..10_000,
            hops in 1usize..10,
        ) {
            let profile = TrafficProfile::new(
                Bits::from_bits(12_000 + sigma_extra),
                Rate::from_bps(rho),
                Rate::from_bps(rho * (1 + peak_mult)),
                Bits::from_bytes(1500),
            ).unwrap();
            let d_req = Nanos::from_millis(d_ms);

            // BB side: the §3.1 test on a MIB-described path.
            let mut nodes = NodeMib::new();
            let refs: Vec<_> = (0..hops)
                .map(|_| {
                    nodes.add_link(LinkQos::new(
                        Rate::from_bps(1_500_000),
                        HopKind::RateBased,
                        Nanos::from_millis(8),
                        Nanos::ZERO,
                        Bits::from_bytes(1500),
                    ))
                })
                .collect();
            let mut paths = PathMib::new();
            let pid = paths.register(&nodes, refs);
            let bb = bb_core::admission::rate_based::admit(
                &profile, d_req, paths.path(pid), &nodes,
            );

            // IntServ side: hop-by-hop on the equivalent topology.
            let mut b = TopologyBuilder::new();
            let ns: Vec<_> = (0..=hops).map(|i| b.node(format!("n{i}"))).collect();
            for i in 0..hops {
                b.link(
                    ns[i],
                    ns[i + 1],
                    Rate::from_bps(1_500_000),
                    Nanos::ZERO,
                    SchedulerSpec::CsVc,
                    Bits::from_bytes(1500),
                );
            }
            let mut is = IntServ::new(&b.build());
            let route: Vec<usize> = (0..hops).collect();
            let gs = is.request(
                qos_units::Time::ZERO,
                vtrs::packet::FlowId(1),
                &profile,
                d_req,
                &route,
            );

            match (bb, gs) {
                (Ok(range), Ok(rate)) => prop_assert_eq!(range.low, rate),
                (Err(Reject::DelayInfeasible), Err(Reject::DelayInfeasible)) => {}
                (Err(Reject::Bandwidth), Err(Reject::Bandwidth)) => {}
                (a, b) => prop_assert!(false, "control planes disagree: {a:?} vs {b:?}"),
            }
        }
    }
}
