//! Serial-equivalence property tests for the two-phase admission
//! pipeline.
//!
//! The decide/commit split is an optimisation, not a semantic change:
//! for *any* mixed workload of per-flow requests, class joins and
//! releases, a broker driven through explicit [`Broker::decide`] +
//! [`Broker::commit`] must produce exactly the same per-flow outcomes
//! and final link accounting as a broker driven through the monolithic
//! [`Broker::request`] — even when plans are decided in advance and
//! arrive at commit with stale epoch stamps that force revalidation.

use bb_core::admission::aggregate::ClassSpec;
use bb_core::shard::{BrokerShard, FastDecideHandle};
use bb_core::signaling::Reject;
use bb_core::{AdmissionPlan, Broker, BrokerConfig, FlowRequest, PathId, ServiceKind};
use netsim::topology::{LinkId, SchedulerSpec, TopologyBuilder};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

#[derive(Debug, Clone)]
enum Op {
    RequestPerFlow { d_ms: u64 },
    RequestClass { class: u32 },
    Release { victim: usize },
}

fn gen_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (2_000u64..6_000).prop_map(|d_ms| Op::RequestPerFlow { d_ms }),
            (0u32..2).prop_map(|class| Op::RequestClass { class }),
            (0usize..64).prop_map(|victim| Op::Release { victim }),
        ],
        1..80,
    )
}

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

/// A five-hop path mixing rate-based (`CsVc`) and delay-based (`VtEdf`)
/// hops, so both admission procedures run under the cache.
fn make_broker() -> (Broker, bb_core::mib::PathId, Vec<LinkId>) {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..6).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<LinkId> = (0..5)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                if i == 2 || i == 3 {
                    SchedulerSpec::VtEdf
                } else {
                    SchedulerSpec::CsVc
                },
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let mut broker = Broker::new(
        topo,
        BrokerConfig {
            classes: vec![
                ClassSpec {
                    id: 0,
                    d_req: Nanos::from_millis(2_440),
                    cd: Nanos::from_millis(240),
                },
                ClassSpec {
                    id: 1,
                    d_req: Nanos::from_millis(3_000),
                    cd: Nanos::from_millis(100),
                },
            ],
            ..BrokerConfig::default()
        },
    );
    let pid = broker.register_route(&route);
    (broker, pid, route)
}

fn request_for(op: &Op, flow: FlowId, pid: bb_core::mib::PathId) -> FlowRequest {
    match *op {
        Op::RequestPerFlow { d_ms } => FlowRequest {
            flow,
            profile: type0(),
            d_req: Nanos::from_millis(d_ms),
            service: ServiceKind::PerFlow,
            path: pid,
        },
        Op::RequestClass { class } => FlowRequest {
            flow,
            profile: type0(),
            d_req: Nanos::ZERO,
            service: ServiceKind::Class(class),
            path: pid,
        },
        Op::Release { .. } => unreachable!("releases carry no request"),
    }
}

type FlowOutcome = Result<(u64, u64), Reject>;

fn outcome_of(res: Result<bb_core::signaling::Reservation, Reject>) -> FlowOutcome {
    res.map(|r| (r.rate.as_bps(), r.delay.as_nanos()))
}

/// Both brokers must agree link-for-link once a run ends.
fn assert_same_accounting(serial: &Broker, piped: &Broker, links: &[LinkId]) {
    for l in links {
        let lr = bb_core::mib::LinkRef(l.0);
        assert_eq!(
            serial.nodes().link(lr).reserved(),
            piped.nodes().link(lr).reserved(),
            "link {l:?} accounting diverged between serial and pipelined brokers"
        );
    }
    assert_eq!(serial.flows().len(), piped.flows().len());
    assert_eq!(serial.macroflows().count(), piped.macroflows().count());
}

/// Back-to-back decides with no commit in between share one cached
/// summary: the first lookup misses, every later one hits, and a
/// commit (which moves the path epoch) invalidates the entry.
#[test]
fn path_summary_cache_hits_between_commits() {
    let (mut broker, pid, _) = make_broker();
    let req = request_for(&Op::RequestPerFlow { d_ms: 2_440 }, FlowId(1), pid);
    let first = broker.decide(&req);
    let (h0, m0) = broker.path_cache_counters();
    assert_eq!((h0, m0), (0, 1), "first decide must miss");
    let _ = broker.decide(&req);
    let (h1, m1) = broker.path_cache_counters();
    assert_eq!(
        (h1, m1),
        (1, 1),
        "repeat decide with an unmoved epoch must hit"
    );

    broker.commit(Time::ZERO, &first).expect("fits empty path");
    let next = request_for(&Op::RequestPerFlow { d_ms: 2_440 }, FlowId(2), pid);
    let _ = broker.decide(&next);
    let (h2, m2) = broker.path_cache_counters();
    assert_eq!(
        (h2, m2),
        (1, 2),
        "commit moved the epoch, so the entry is stale"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lockstep: each request is decided and committed back-to-back on
    /// the pipelined broker while the serial broker handles the same
    /// request monolithically. Every outcome must match flow-for-flow,
    /// across interleaved releases that invalidate the path cache.
    #[test]
    fn decide_commit_lockstep_matches_monolithic_request(ops in gen_ops()) {
        let (mut serial, pid_a, links) = make_broker();
        let (mut piped, pid_b, _) = make_broker();
        prop_assert_eq!(pid_a, pid_b);
        let now = Time::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut next_id = 0u64;
        for op in &ops {
            if let Op::Release { victim } = op {
                if !live.is_empty() {
                    let flow = live.remove(victim % live.len());
                    serial.release(now, flow).expect("live in serial");
                    piped.release(now, flow).expect("live in piped");
                }
                continue;
            }
            let flow = FlowId(next_id);
            next_id += 1;
            let req = request_for(op, flow, pid_a);
            let expected = outcome_of(serial.request(now, &req));
            let plan = piped.decide(&req);
            let got = outcome_of(piped.commit(now, &plan));
            prop_assert_eq!(&expected, &got, "outcome diverged for {:?}", flow);
            if expected.is_ok() {
                live.push(flow);
            }
        }
        assert_same_accounting(&serial, &piped, &links);
    }

    /// Stale plans: every request is decided up front against the empty
    /// domain, then the plans are committed in order with releases
    /// interleaved. Each commit after the first arrives with a stale
    /// epoch stamp; revalidation must reproduce exactly what a serial
    /// broker decides fresh at commit time.
    #[test]
    fn stale_plans_revalidate_to_serial_outcomes(ops in gen_ops()) {
        let (mut serial, pid, links) = make_broker();
        let (mut piped, _, _) = make_broker();
        let now = Time::ZERO;

        // Phase one: decide a plan for every request before anything
        // commits. `decide` is `&self` — the domain stays untouched.
        let mut plans = Vec::new();
        let mut next_id = 0u64;
        for op in &ops {
            if matches!(op, Op::Release { .. }) {
                continue;
            }
            let flow = FlowId(next_id);
            next_id += 1;
            plans.push(request_for(op, flow, pid));
        }
        let plans: Vec<_> = plans.iter().map(|req| piped.decide(req)).collect();
        assert!(piped.flows().is_empty(), "decide must not book state");

        // Phase two: replay the op stream; requests commit their
        // pre-decided (now stale) plans, releases hit both brokers.
        let mut live: Vec<FlowId> = Vec::new();
        let mut plan_iter = plans.iter();
        for op in &ops {
            if let Op::Release { victim } = op {
                if !live.is_empty() {
                    let flow = live.remove(victim % live.len());
                    serial.release(now, flow).expect("live in serial");
                    piped.release(now, flow).expect("live in piped");
                }
                continue;
            }
            let plan = plan_iter.next().expect("one plan per request op");
            let req = &plan.request;
            let expected = outcome_of(serial.request(now, req));
            let got = outcome_of(piped.commit(now, plan));
            prop_assert_eq!(&expected, &got, "stale-plan outcome diverged for {:?}", req.flow);
            if expected.is_ok() {
                live.push(req.flow);
            }
        }
        assert_same_accounting(&serial, &piped, &links);
        prop_assert_eq!(serial.stats().admitted, piped.stats().admitted);
        prop_assert_eq!(serial.stats().requested, piped.stats().requested);
    }
}

// ---------------------------------------------------------------------
// Batched lock-free decides (seqlock fast path).
// ---------------------------------------------------------------------

/// Three disjoint, purely rate-based chains registered under one shard
/// — the fixture for the batched lock-free decide path. (The
/// mixed-scheduler [`make_broker`] path has `VtEdf` hops, so the fast
/// path would always decline it.)
fn make_rate_only_shard() -> (BrokerShard, Vec<LinkId>) {
    let mut b = TopologyBuilder::new();
    let mut links = Vec::new();
    let mut routes: Vec<(PathId, Vec<LinkId>)> = Vec::new();
    for chain in 0..3u64 {
        let nodes: Vec<_> = (0..4).map(|i| b.node(format!("c{chain}n{i}"))).collect();
        let route: Vec<LinkId> = (0..3)
            .map(|i| {
                b.link(
                    nodes[i],
                    nodes[i + 1],
                    Rate::from_bps(1_500_000),
                    Nanos::ZERO,
                    SchedulerSpec::CsVc,
                    Bits::from_bytes(1500),
                )
            })
            .collect();
        links.extend(route.iter().copied());
        routes.push((PathId(chain), route));
    }
    let topo = b.build();
    let shard = BrokerShard::new(0, 1, &topo, &BrokerConfig::default(), &routes);
    (shard, links)
}

#[derive(Debug, Clone)]
enum BatchOp {
    Request { path: u64, d_ms: u64 },
    Release { victim: usize },
}

fn gen_batch_ops() -> impl Strategy<Value = Vec<BatchOp>> {
    prop::collection::vec(
        prop_oneof![
            ((0u64..3), (2_000u64..6_000)).prop_map(|(path, d_ms)| BatchOp::Request { path, d_ms }),
            ((0u64..3), (2_000u64..6_000)).prop_map(|(path, d_ms)| BatchOp::Request { path, d_ms }),
            ((0u64..3), (2_000u64..6_000)).prop_map(|(path, d_ms)| BatchOp::Request { path, d_ms }),
            (0usize..64).prop_map(|victim| BatchOp::Release { victim }),
        ],
        1..80,
    )
}

fn batch_request(flow: FlowId, path: u64, d_ms: u64) -> FlowRequest {
    FlowRequest {
        flow,
        profile: type0(),
        d_req: Nanos::from_millis(d_ms),
        service: ServiceKind::PerFlow,
        path: PathId(path),
    }
}

/// Decides one window the way `conn.rs` does — sorted into contiguous
/// same-path groups, one summary probe per group, locked fallback when
/// the fast path declines — then commits every plan in **arrival**
/// order against the serial reference, flow for flow.
///
/// The counter assertion inside is the lock-freedom proof of the
/// ISSUE: a group served by [`FastDecideHandle::begin`] must leave the
/// broker's own summary-cache counters untouched, because those only
/// move under the shard's locked decide.
fn flush_window(
    now: Time,
    window: &mut Vec<FlowRequest>,
    serial: &mut BrokerShard,
    batched: &mut BrokerShard,
    fast: &FastDecideHandle,
    fast_decided: &mut u64,
    live: &mut Vec<FlowId>,
) -> Result<(), TestCaseError> {
    let mut order: Vec<usize> = (0..window.len()).collect();
    order.sort_by_key(|&i| window[i].path.0);
    let mut plans: Vec<Option<AdmissionPlan>> = (0..window.len()).map(|_| None).collect();
    let mut i = 0;
    while i < order.len() {
        let path = window[order[i]].path;
        let mut j = i;
        while j < order.len() && window[order[j]].path == path {
            j += 1;
        }
        let before = batched.broker().path_cache_counters();
        if let Some(group) = fast.begin(path, ServiceKind::PerFlow) {
            for &k in &order[i..j] {
                plans[k] = Some(group.decide(&window[k]));
                *fast_decided += 1;
            }
            prop_assert_eq!(
                batched.broker().path_cache_counters(),
                before,
                "fast-path decide probed the locked summary cache"
            );
        } else {
            for &k in &order[i..j] {
                plans[k] = Some(batched.decide(&window[k]));
            }
        }
        i = j;
    }
    for (req, plan) in window.iter().zip(plans) {
        let plan = plan.expect("every windowed request was planned");
        let expected = outcome_of(serial.request(now, req));
        let got = outcome_of(batched.commit(now, &plan));
        prop_assert_eq!(
            &expected,
            &got,
            "batched outcome diverged for {:?}",
            req.flow
        );
        if expected.is_ok() {
            live.push(req.flow);
        }
    }
    window.clear();
    Ok(())
}

/// One warmed group decides its whole batch lock-free: the handle
/// counts every hit, the broker's summary-cache counters stay
/// untouched, and the commits reproduce the serial outcomes — including
/// the plans that arrive stale because an earlier commit of the same
/// batch moved the epoch.
#[test]
fn fast_group_decides_without_probing_the_locked_cache() {
    let (mut serial, _) = make_rate_only_shard();
    let (mut batched, _) = make_rate_only_shard();
    batched.broker().warm_summaries();
    let fast = batched.fast_handle();
    let now = Time::ZERO;
    let reqs: Vec<FlowRequest> = (0..5).map(|i| batch_request(FlowId(i), 1, 4_000)).collect();
    let before = batched.broker().path_cache_counters();
    let group = fast
        .begin(PathId(1), ServiceKind::PerFlow)
        .expect("warmed rate-only path takes the fast path");
    let plans: Vec<AdmissionPlan> = reqs.iter().map(|r| group.decide(r)).collect();
    assert_eq!(fast.hits(), 5);
    assert_eq!(
        batched.broker().path_cache_counters(),
        before,
        "lock-free decides must not touch the locked summary cache"
    );
    for (req, plan) in reqs.iter().zip(&plans) {
        let expected = outcome_of(serial.request(now, req));
        let got = outcome_of(batched.commit(now, plan));
        assert_eq!(expected, got, "outcome diverged for {:?}", req.flow);
    }
    // The commits moved the path epoch, so the cell is stale: the fast
    // path declines until a locked decide recomputes and republishes.
    assert!(
        fast.begin(PathId(1), ServiceKind::PerFlow).is_none(),
        "stale cell must decline the fast path"
    );
    let refresh = batch_request(FlowId(99), 1, 4_000);
    let _ = batched.decide(&refresh);
    assert!(
        fast.begin(PathId(1), ServiceKind::PerFlow).is_some(),
        "locked decide republishes the summary for the next batch"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of same-path and cross-path requests,
    /// decided in path-grouped batches over the lock-free seqlock fast
    /// path (with locked fallback on stale cells) and committed in
    /// arrival order, are flow-for-flow equivalent to the serial
    /// monolithic broker — with releases interleaved to churn epochs.
    #[test]
    fn batched_grouped_decides_match_the_serial_broker(ops in gen_batch_ops()) {
        let (mut serial, _) = make_rate_only_shard();
        let (mut batched, links) = make_rate_only_shard();
        batched.broker().warm_summaries();
        let fast = batched.fast_handle();
        let now = Time::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut window: Vec<FlowRequest> = Vec::new();
        let mut fast_decided = 0u64;
        let mut next_id = 0u64;
        for op in &ops {
            match *op {
                BatchOp::Request { path, d_ms } => {
                    window.push(batch_request(FlowId(next_id), path, d_ms));
                    next_id += 1;
                    if window.len() == 8 {
                        flush_window(now, &mut window, &mut serial, &mut batched,
                                     &fast, &mut fast_decided, &mut live)?;
                    }
                }
                BatchOp::Release { victim } => {
                    // A release is a serialization point: the pending
                    // window commits first, exactly as the dispatcher
                    // drains a readiness pass before mutating ops.
                    flush_window(now, &mut window, &mut serial, &mut batched,
                                 &fast, &mut fast_decided, &mut live)?;
                    if !live.is_empty() {
                        let flow = live.remove(victim % live.len());
                        serial.release(now, flow).expect("live in serial");
                        batched.release(now, flow).expect("live in batched");
                    }
                }
            }
        }
        flush_window(now, &mut window, &mut serial, &mut batched,
                     &fast, &mut fast_decided, &mut live)?;
        assert_same_accounting(serial.broker(), batched.broker(), &links);
        prop_assert_eq!(
            fast.hits(), fast_decided,
            "every lock-free decide is counted exactly once"
        );
    }
}
