//! Time-varying arrival intensity: diurnal load curves and a
//! non-homogeneous Poisson sampler.
//!
//! The Figure-10 experiments drive constant-rate Poisson arrivals; an
//! ISP-scale scenario needs the arrival rate itself to move — a diurnal
//! swell from a night-time trough to an evening peak, with flash-crowd
//! steps layered on top. [`IntensityCurve`] is a piecewise-linear
//! λ(t); [`sample_arrivals`] draws arrival instants from it by Lewis &
//! Shedler thinning (candidates at the peak rate, each kept with
//! probability λ(t)/λ_peak), so the draw is exact for any curve and —
//! like everything in this crate — deterministic given its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A piecewise-linear arrival-intensity curve λ(t) in arrivals/s.
///
/// Points are `(t_seconds, rate_per_second)` knots; the rate is linearly
/// interpolated between knots and held constant before the first and
/// after the last. A curve is never negative.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensityCurve {
    knots: Vec<(f64, f64)>,
}

impl IntensityCurve {
    /// Builds a curve from its knots.
    ///
    /// # Panics
    ///
    /// Panics when `knots` is empty, out of time order, or carries a
    /// negative or non-finite time/rate.
    #[must_use]
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(!knots.is_empty(), "intensity curve needs at least one knot");
        for w in knots.windows(2) {
            assert!(w[0].0 <= w[1].0, "intensity knots out of time order");
        }
        for &(t, r) in &knots {
            assert!(
                t.is_finite() && t >= 0.0,
                "knot time must be finite and ≥ 0"
            );
            assert!(
                r.is_finite() && r >= 0.0,
                "knot rate must be finite and ≥ 0"
            );
        }
        IntensityCurve { knots }
    }

    /// A flat curve: constant `rate` arrivals/s.
    #[must_use]
    pub fn flat(rate: f64) -> Self {
        IntensityCurve::new(vec![(0.0, rate)])
    }

    /// A diurnal curve over `period_s`: a raised cosine swinging from
    /// `trough` (at t = 0) up to `peak` (at t = period/2) and back,
    /// sampled into `segments` linear pieces. With `period_s` scaled
    /// down (say 86 400 s of "model time" compressed into a minute of
    /// wall time) this is the canonical day/night load shape.
    ///
    /// # Panics
    ///
    /// Panics when `peak < trough`, rates are negative, `period_s ≤ 0`,
    /// or `segments < 2`.
    #[must_use]
    pub fn diurnal(trough: f64, peak: f64, period_s: f64, segments: usize) -> Self {
        assert!(trough >= 0.0 && peak >= trough, "need 0 ≤ trough ≤ peak");
        assert!(period_s > 0.0, "period must be positive");
        assert!(segments >= 2, "need at least two segments");
        let knots = (0..=segments)
            .map(|i| {
                let t = period_s * i as f64 / segments as f64;
                let phase = std::f64::consts::TAU * i as f64 / segments as f64;
                // Raised cosine: trough at phase 0, peak at phase π.
                let r = trough + (peak - trough) * (1.0 - phase.cos()) / 2.0;
                (t, r)
            })
            .collect();
        IntensityCurve::new(knots)
    }

    /// λ(t): linear interpolation between knots, clamped to the first
    /// and last knot outside their span.
    #[must_use]
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let first = self.knots[0];
        let last = self.knots[self.knots.len() - 1];
        if t_s <= first.0 {
            return first.1;
        }
        if t_s >= last.0 {
            return last.1;
        }
        // Knots are few (tens); a linear scan beats binary search noise.
        for w in self.knots.windows(2) {
            let ((t0, r0), (t1, r1)) = (w[0], w[1]);
            if t_s <= t1 {
                if t1 <= t0 {
                    return r1;
                }
                let f = (t_s - t0) / (t1 - t0);
                return r0 + (r1 - r0) * f;
            }
        }
        last.1
    }

    /// The curve's maximum rate — the thinning envelope.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.knots.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }

    /// ∫λ(t)dt over `[0, horizon_s]` — the expected arrival count
    /// (trapezoid rule; exact for a piecewise-linear curve).
    #[must_use]
    pub fn expected_arrivals(&self, horizon_s: f64) -> f64 {
        let steps = 4096;
        let dt = horizon_s / steps as f64;
        (0..steps)
            .map(|i| {
                let a = self.rate_at(dt * i as f64);
                let b = self.rate_at(dt * (i + 1) as f64);
                (a + b) / 2.0 * dt
            })
            .sum()
    }
}

/// Draws arrival instants (seconds, ascending) on `[0, horizon_s)` from
/// the non-homogeneous Poisson process with intensity `curve`, by
/// thinning. Deterministic given `seed`.
#[must_use]
pub fn sample_arrivals(seed: u64, curve: &IntensityCurve, horizon_s: f64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    sample_arrivals_rng(&mut rng, curve, horizon_s)
}

/// [`sample_arrivals`] over a caller-owned RNG, for composing several
/// processes from one deterministic stream.
#[must_use]
pub fn sample_arrivals_rng(rng: &mut SmallRng, curve: &IntensityCurve, horizon_s: f64) -> Vec<f64> {
    let peak = curve.peak();
    let mut out = Vec::new();
    if peak <= 0.0 || horizon_s <= 0.0 {
        return out;
    }
    let mut t = 0.0f64;
    loop {
        // Candidate stream at the constant envelope rate…
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / peak;
        if t >= horizon_s {
            return out;
        }
        // …each kept with probability λ(t)/λ_peak.
        let keep: f64 = rng.gen_range(0.0..1.0);
        if keep * peak < curve.rate_at(t) {
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_curve_interpolates_trivially() {
        let c = IntensityCurve::flat(3.5);
        assert_eq!(c.rate_at(0.0), 3.5);
        assert_eq!(c.rate_at(1e6), 3.5);
        assert_eq!(c.peak(), 3.5);
    }

    #[test]
    fn interpolation_is_linear_and_clamped() {
        let c = IntensityCurve::new(vec![(10.0, 0.0), (20.0, 10.0)]);
        assert_eq!(c.rate_at(0.0), 0.0); // clamped before the first knot
        assert_eq!(c.rate_at(15.0), 5.0);
        assert!((c.rate_at(12.5) - 2.5).abs() < 1e-12);
        assert_eq!(c.rate_at(25.0), 10.0); // clamped after the last
        assert_eq!(c.peak(), 10.0);
    }

    #[test]
    fn diurnal_troughs_and_peaks_where_expected() {
        let c = IntensityCurve::diurnal(1.0, 9.0, 100.0, 24);
        assert!((c.rate_at(0.0) - 1.0).abs() < 1e-9);
        assert!((c.rate_at(50.0) - 9.0).abs() < 1e-9);
        assert!((c.rate_at(100.0) - 1.0).abs() < 1e-9);
        assert!(c.peak() <= 9.0 + 1e-9);
        // Rising through the morning, falling through the evening.
        assert!(c.rate_at(25.0) > c.rate_at(10.0));
        assert!(c.rate_at(90.0) < c.rate_at(60.0));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let c = IntensityCurve::diurnal(0.5, 5.0, 200.0, 12);
        let a = sample_arrivals(42, &c, 200.0);
        let b = sample_arrivals(42, &c, 200.0);
        assert_eq!(a, b);
        assert_ne!(a, sample_arrivals(43, &c, 200.0));
    }

    #[test]
    fn arrival_count_tracks_the_curve_integral() {
        let c = IntensityCurve::diurnal(2.0, 20.0, 500.0, 24);
        let expected = c.expected_arrivals(500.0);
        let n = sample_arrivals(7, &c, 500.0).len() as f64;
        assert!(
            (n - expected).abs() < 4.0 * expected.sqrt(),
            "got {n} arrivals, expected ≈{expected:.0}"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_in_horizon() {
        let c = IntensityCurve::diurnal(1.0, 8.0, 300.0, 12);
        let xs = sample_arrivals(3, &c, 300.0);
        assert!(!xs.is_empty());
        for w in xs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*xs.last().unwrap() < 300.0);
    }

    #[test]
    fn thinning_concentrates_arrivals_at_the_peak() {
        // Trough 0 → no arrivals at all in the first/last quarters of a
        // half-period window around t=0; nearly all mass mid-period.
        let c = IntensityCurve::diurnal(0.0, 10.0, 400.0, 48);
        let xs = sample_arrivals(11, &c, 400.0);
        let early = xs.iter().filter(|&&t| t < 40.0).count();
        let mid = xs.iter().filter(|&&t| (180.0..220.0).contains(&t)).count();
        assert!(mid > early * 5, "mid {mid} vs early {early}");
    }

    #[test]
    fn flat_curve_reduces_to_homogeneous_poisson() {
        let c = IntensityCurve::flat(1.0);
        let xs = sample_arrivals(5, &c, 5_000.0);
        let gaps: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((0.85..1.15).contains(&cv), "CV {cv:.3}, expected ≈1");
        assert!((0.9..1.1).contains(&mean), "mean gap {mean:.3}s at λ=1");
    }

    #[test]
    fn zero_rate_curve_yields_no_arrivals() {
        let c = IntensityCurve::flat(0.0);
        assert!(sample_arrivals(1, &c, 100.0).is_empty());
    }
}
