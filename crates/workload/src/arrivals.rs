//! Stochastic flow arrival/departure processes for the blocking
//! experiments (Figure 10).
//!
//! Flows arrive as a Poisson process and hold for exponentially
//! distributed durations (mean 200 s in §5). [`FlowProcess`] pre-computes
//! the merged event sequence — arrivals interleaved with the departures
//! of previously admitted flows — so an experiment replays a fixed,
//! seed-determined scenario against any admission scheme, making scheme
//! comparisons paired (same arrivals, same lifetimes).

use qos_units::{Nanos, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vtrs::packet::FlowId;

/// What happens to a flow at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowEventKind {
    /// The flow requests admission.
    Arrival,
    /// The flow terminates (only emitted if it was still present at its
    /// scheduled departure; rejected flows simply never depart).
    Departure,
}

/// One event of the flow process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEvent {
    /// When it happens.
    pub at: Time,
    /// Which flow.
    pub flow: FlowId,
    /// Arrival or departure.
    pub kind: FlowEventKind,
    /// Index of the source/ingress this flow originates from (§5 uses
    /// S1 and S2).
    pub source: usize,
}

/// A seeded Poisson-arrival / exponential-holding flow process.
#[derive(Debug, Clone)]
pub struct FlowProcess {
    events: Vec<FlowEvent>,
}

impl FlowProcess {
    /// Generates a process with `arrival_rate_per_sec` (aggregate over
    /// all sources, split uniformly), exponential holding with
    /// `mean_holding`, over `horizon`, from `seed`. Flow ids are assigned
    /// sequentially from 0.
    #[must_use]
    pub fn generate(
        seed: u64,
        arrival_rate_per_sec: f64,
        mean_holding: Nanos,
        horizon: Time,
        sources: usize,
    ) -> Self {
        assert!(arrival_rate_per_sec > 0.0, "arrival rate must be positive");
        assert!(sources > 0, "need at least one source");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        let horizon_s = horizon.as_secs_f64();
        let mean_hold_s = mean_holding.as_secs_f64();
        let mut next_id = 0u64;
        while t < horizon_s {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / arrival_rate_per_sec;
            if t >= horizon_s {
                break;
            }
            let flow = FlowId(next_id);
            next_id += 1;
            let source = rng.gen_range(0..sources);
            let hold: f64 = {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() * mean_hold_s
            };
            events.push(FlowEvent {
                at: Time::from_secs_f64(t),
                flow,
                kind: FlowEventKind::Arrival,
                source,
            });
            events.push(FlowEvent {
                at: Time::from_secs_f64(t + hold),
                flow,
                kind: FlowEventKind::Departure,
                source,
            });
        }
        events.sort_by_key(|e| (e.at, e.flow.0, e.kind == FlowEventKind::Departure));
        FlowProcess { events }
    }

    /// The merged, time-ordered event sequence.
    #[must_use]
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// Number of arrivals in the process.
    #[must_use]
    pub fn arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == FlowEventKind::Arrival)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = FlowProcess::generate(
            7,
            0.5,
            Nanos::from_secs(200),
            Time::from_secs_f64(1000.0),
            2,
        );
        let b = FlowProcess::generate(
            7,
            0.5,
            Nanos::from_secs(200),
            Time::from_secs_f64(1000.0),
            2,
        );
        assert_eq!(a.events(), b.events());
        let c = FlowProcess::generate(
            8,
            0.5,
            Nanos::from_secs(200),
            Time::from_secs_f64(1000.0),
            2,
        );
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn every_arrival_has_a_later_departure() {
        let p = FlowProcess::generate(1, 1.0, Nanos::from_secs(200), Time::from_secs_f64(500.0), 2);
        let mut arr = std::collections::HashMap::new();
        for e in p.events() {
            match e.kind {
                FlowEventKind::Arrival => {
                    arr.insert(e.flow, e.at);
                }
                FlowEventKind::Departure => {
                    let at = arr.remove(&e.flow).expect("departure after arrival");
                    assert!(e.at >= at);
                }
            }
        }
        assert!(arr.is_empty(), "unmatched arrivals");
    }

    #[test]
    fn arrival_count_tracks_rate() {
        // λ = 2/s over 2000 s → ~4000 arrivals; allow wide tolerance.
        let p = FlowProcess::generate(
            3,
            2.0,
            Nanos::from_secs(200),
            Time::from_secs_f64(2000.0),
            2,
        );
        let n = p.arrivals();
        assert!((3200..4800).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn events_are_time_ordered() {
        let p = FlowProcess::generate(5, 1.0, Nanos::from_secs(200), Time::from_secs_f64(300.0), 2);
        for w in p.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn sources_are_used_roughly_evenly() {
        let p = FlowProcess::generate(
            9,
            2.0,
            Nanos::from_secs(200),
            Time::from_secs_f64(2000.0),
            2,
        );
        let s0 = p
            .events()
            .iter()
            .filter(|e| e.kind == FlowEventKind::Arrival && e.source == 0)
            .count();
        let total = p.arrivals();
        let frac = s0 as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "source split {frac}");
    }
}
// (statistical sanity tests appended below)

#[cfg(test)]
mod statistics {
    use super::*;

    /// Mean holding time of generated flows tracks the configured mean
    /// (law of large numbers over a long horizon).
    #[test]
    fn holding_times_average_to_the_mean() {
        let mean = Nanos::from_secs(200);
        let p = FlowProcess::generate(2, 2.0, mean, Time::from_secs_f64(5_000.0), 2);
        let mut arrivals = std::collections::HashMap::new();
        let mut total = 0.0f64;
        let mut n = 0u64;
        for e in p.events() {
            match e.kind {
                FlowEventKind::Arrival => {
                    arrivals.insert(e.flow, e.at);
                }
                FlowEventKind::Departure => {
                    let at = arrivals[&e.flow];
                    total += e.at.saturating_since(at).as_secs_f64();
                    n += 1;
                }
            }
        }
        let avg = total / n as f64;
        assert!(
            (170.0..230.0).contains(&avg),
            "mean holding {avg:.1}s, expected ≈200s over {n} flows"
        );
    }

    /// Inter-arrival times are exponential-ish: the coefficient of
    /// variation of an exponential distribution is 1.
    #[test]
    fn interarrivals_look_exponential() {
        let p = FlowProcess::generate(
            5,
            1.0,
            Nanos::from_secs(200),
            Time::from_secs_f64(5_000.0),
            1,
        );
        let times: Vec<f64> = p
            .events()
            .iter()
            .filter(|e| e.kind == FlowEventKind::Arrival)
            .map(|e| e.at.as_secs_f64())
            .collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((0.85..1.15).contains(&cv), "CV {cv:.3}, expected ≈1");
        assert!((0.9..1.1).contains(&mean), "mean gap {mean:.3}s at λ=1");
    }
}
