//! The paper's Table 1: traffic profiles and delay bounds.

use qos_units::{Bits, Nanos, Rate};
use serde::{Deserialize, Serialize};
use vtrs::profile::TrafficProfile;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Flow type index (0–3).
    pub flow_type: u32,
    /// The dual-token-bucket profile.
    pub profile: TrafficProfile,
    /// The looser end-to-end delay bound used in §5.
    pub delay_loose: Nanos,
    /// The tighter end-to-end delay bound used in §5.
    pub delay_tight: Nanos,
}

/// Table 1 verbatim: burst sizes 60/48/36/24 kb, mean rates 50/40/30/20
/// kb/s, peak rate 0.1 Mb/s, maximum packet size 1500 B, and the two
/// delay bounds per type.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    let rows = [
        (0u32, 60_000u64, 50_000u64, 2_440u64, 2_190u64),
        (1, 48_000, 40_000, 2_740, 2_460),
        (2, 36_000, 30_000, 3_240, 2_910),
        (3, 24_000, 20_000, 4_240, 3_810),
    ];
    rows.into_iter()
        .map(|(t, sigma, rho, loose_ms, tight_ms)| Table1Row {
            flow_type: t,
            profile: TrafficProfile::new(
                Bits::from_bits(sigma),
                Rate::from_bps(rho),
                Rate::from_bps(100_000),
                Bits::from_bytes(1500),
            )
            .expect("Table 1 profiles are valid"),
            delay_loose: Nanos::from_millis(loose_ms),
            delay_tight: Nanos::from_millis(tight_ms),
        })
        .collect()
}

/// The type-0 profile — the one §5's admission experiments use.
#[must_use]
pub fn type0() -> TrafficProfile {
    table1()[0].profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_types_with_common_peak() {
        let t = table1();
        assert_eq!(t.len(), 4);
        for row in &t {
            assert_eq!(row.profile.peak, Rate::from_bps(100_000));
            assert_eq!(row.profile.l_max, Bits::from_bytes(1500));
            assert!(row.delay_tight < row.delay_loose);
        }
    }

    #[test]
    fn loose_bounds_are_met_at_mean_rate_on_the_5_hop_path() {
        // The loose bound of each type is exactly the e2e bound at
        // r = ρ over 5 rate-based hops with Ψ = 8 ms — that is how the
        // paper chose them.
        use vtrs::reference::{HopKind, HopSpec, PathSpec};
        let path = PathSpec::new(vec![
            HopSpec {
                kind: HopKind::RateBased,
                psi: Nanos::from_millis(8),
                prop_delay: Nanos::ZERO,
            };
            5
        ]);
        for row in table1() {
            let bound = vtrs::delay::e2e_delay_bound(
                &row.profile,
                &path,
                row.profile.l_max,
                row.profile.rho,
                Nanos::ZERO,
            )
            .unwrap();
            // Types 0, 1, 3 are exact in nanoseconds; type 2's T_on
            // (24000/70000 s) is not ns-representable, so conservative
            // rounding may add a nanosecond.
            let slack = bound.saturating_sub(row.delay_loose);
            assert!(
                slack <= Nanos::from_nanos(2),
                "type {} loose bound off by {}",
                row.flow_type,
                slack
            );
        }
    }

    #[test]
    fn tight_bounds_require_rates_above_mean() {
        for row in table1() {
            let r = vtrs::delay::min_rate_rate_based(
                &row.profile,
                5,
                Nanos::from_millis(40),
                row.delay_tight,
            )
            .unwrap();
            assert!(
                r > row.profile.rho,
                "type {}: tight bound should need more than the mean rate",
                row.flow_type
            );
            assert!(r <= row.profile.peak);
        }
    }
}
