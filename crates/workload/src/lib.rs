//! Workload generation for the evaluation (§5).
//!
//! Provides the paper's Table-1 traffic profiles, seeded stochastic flow
//! arrival/holding processes for the blocking experiments (Figure 10),
//! and offered-load sweep helpers. Everything is deterministic given its
//! seed, so experiment runs replay exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod intensity;
pub mod profiles;

pub use arrivals::{FlowEvent, FlowEventKind, FlowProcess};
pub use intensity::{sample_arrivals, sample_arrivals_rng, IntensityCurve};
pub use profiles::{table1, Table1Row};
