//! Property-based tests for the exact-arithmetic substrate.

use proptest::prelude::*;
use qos_units::ratio::{cmp_ratio, mul_div_ceil, mul_div_floor};
use qos_units::{Bits, Nanos, Rate};

proptest! {
    /// floor ≤ exact ≤ ceil, and they differ by at most 1.
    #[test]
    fn floor_ceil_bracket_exact(a in 0u64..=u32::MAX as u64,
                                b in 0u64..=u32::MAX as u64,
                                c in 1u64..=u32::MAX as u64) {
        let lo = mul_div_floor(a, b, c);
        let hi = mul_div_ceil(a, b, c);
        prop_assert!(lo <= hi);
        prop_assert!(hi - lo <= 1);
        // Exactness check: lo*c <= a*b < (lo+1)*c
        let prod = u128::from(a) * u128::from(b);
        prop_assert!(u128::from(lo) * u128::from(c) <= prod);
        prop_assert!(prod < (u128::from(lo) + 1) * u128::from(c));
    }

    /// mul_div round-trips: (a*c/c) == a in both directions.
    #[test]
    fn mul_div_identity(a in 0u64..=u32::MAX as u64, c in 1u64..=u32::MAX as u64) {
        prop_assert_eq!(mul_div_floor(a, c, c), a);
        prop_assert_eq!(mul_div_ceil(a, c, c), a);
    }

    /// Ratio comparison agrees with exact rational ordering computed in u128.
    #[test]
    fn cmp_ratio_matches_u128(a0 in 0u64..1u64<<32, b0 in 1u64..1u64<<32,
                              a1 in 0u64..1u64<<32, b1 in 1u64..1u64<<32) {
        let expected = (u128::from(a0) * u128::from(b1)).cmp(&(u128::from(a1) * u128::from(b0)));
        prop_assert_eq!(cmp_ratio(a0, b0, a1, b1), expected);
    }

    /// Transmitting the bits a rate delivers in a window takes no longer
    /// than the window itself (floor direction), i.e. the two conversions
    /// are mutually consistent.
    #[test]
    fn rate_bits_time_roundtrip(bps in 1u64..10_000_000_000u64, ns in 0u64..10_000_000_000u64) {
        let rate = Rate::from_bps(bps);
        let dur = Nanos::from_nanos(ns);
        let bits = rate.bits_in_floor(dur);
        prop_assert!(bits.tx_time_floor(rate) <= dur);
        let bits_up = rate.bits_in_ceil(dur);
        prop_assert!(bits_up.tx_time_ceil(rate) >= dur);
    }

    /// Duration saturating ops never panic and obey ordering.
    #[test]
    fn saturating_ops(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (Nanos::from_nanos(a), Nanos::from_nanos(b));
        prop_assert!(x.saturating_sub(y) <= x);
        prop_assert!(x.saturating_add(y) >= x);
        let (p, q) = (Bits::from_bits(a), Bits::from_bits(b));
        prop_assert!(p.saturating_sub(q) <= p);
        let (r, s) = (Rate::from_bps(a), Rate::from_bps(b));
        prop_assert!(r.saturating_sub(s) <= r);
        prop_assert!(r.saturating_add(s) >= r);
    }
}
