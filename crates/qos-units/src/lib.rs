//! Exact fixed-point arithmetic for QoS computations.
//!
//! Admission control for guaranteed services lives and dies on boundary
//! comparisons: the 30th flow of Table 1 type 0 fits on a 1.5 Mb/s link at a
//! 2.44 s end-to-end delay bound *exactly*, with zero slack. Floating point
//! would decide such cases by rounding luck, so this crate represents
//!
//! * **time** as unsigned 64-bit nanoseconds ([`Nanos`] for durations,
//!   [`Time`] for absolute simulation instants),
//! * **rates** as unsigned 64-bit bits-per-second ([`Rate`]), and
//! * **data volumes** as unsigned 64-bit bits ([`Bits`]),
//!
//! and performs the multiply-divide chains that appear in delay-bound and
//! schedulability formulas in 128-bit intermediates with *directed rounding*
//! ([`ratio::mul_div_floor`] / [`ratio::mul_div_ceil`]).
//!
//! The rounding policy used throughout the workspace is conservative for
//! admission control:
//!
//! * delay bounds round **up** (a computed bound is never smaller than the
//!   real bound);
//! * lower bounds on feasible rates round **up**, upper bounds round
//!   **down** (a rate reported feasible is always truly feasible).
//!
//! With this policy an admission decision can be pessimistic by at most
//! 1 bps or 1 ns, and never optimistic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod handle;
pub mod rate;
pub mod ratio;
pub mod time;

pub use bits::Bits;
pub use handle::Handle;
pub use rate::Rate;
pub use time::{Nanos, Time};

/// Number of nanoseconds in one second, the scaling constant tying
/// [`Rate`] (bits/second) to [`Nanos`] (nanoseconds).
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
