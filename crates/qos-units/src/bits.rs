//! Data-volume type: [`Bits`].

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::ratio;
use crate::{Nanos, Rate, NANOS_PER_SEC};

/// A non-negative amount of data, measured in bits.
///
/// Packet sizes, burst sizes (the token-bucket `σ`), queue backlogs and
/// residual service amounts are all `Bits`. Bits rather than bytes because
/// the paper's traffic profiles (Table 1) specify burst sizes in bits and
/// rates in bits per second; keeping one unit avoids factor-of-8 bugs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bits(u64);

impl Bits {
    /// Zero bits.
    pub const ZERO: Bits = Bits(0);
    /// Maximum representable volume; used as an "infinite" sentinel.
    pub const MAX: Bits = Bits(u64::MAX);

    /// Constructs a volume from a raw bit count.
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        Bits(bits)
    }

    /// Constructs a volume from bytes (1 byte = 8 bits).
    #[must_use]
    pub const fn from_bytes(bytes: u64) -> Self {
        Bits(bytes * 8)
    }

    /// Constructs a volume from kilobits (1 kb = 1000 bits).
    #[must_use]
    pub const fn from_kilobits(kb: u64) -> Self {
        Bits(kb * 1_000)
    }

    /// Raw bit count.
    #[must_use]
    pub const fn as_bits(self) -> u64 {
        self.0
    }

    /// Volume in bytes, rounded down.
    #[must_use]
    pub const fn as_bytes_floor(self) -> u64 {
        self.0 / 8
    }

    /// Time needed to transmit this volume at `rate`, rounded **up**.
    ///
    /// This is the conservative direction for delay bounds: the bound
    /// `L/r` is never under-estimated.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[must_use]
    pub fn tx_time_ceil(self, rate: Rate) -> Nanos {
        Nanos::from_nanos(ratio::mul_div_ceil(self.0, NANOS_PER_SEC, rate.as_bps()))
    }

    /// Time needed to transmit this volume at `rate`, rounded **down**.
    ///
    /// The conservative direction when the result bounds something from
    /// below (e.g. the earliest instant a backlog can drain).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    #[must_use]
    pub fn tx_time_floor(self, rate: Rate) -> Nanos {
        Nanos::from_nanos(ratio::mul_div_floor(self.0, NANOS_PER_SEC, rate.as_bps()))
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Bits) -> Bits {
        Bits(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[must_use]
    pub const fn checked_sub(self, rhs: Bits) -> Option<Bits> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Bits(v)),
            None => None,
        }
    }

    /// Multiplies by an integer scalar.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[must_use]
    pub fn scale(self, k: u64) -> Bits {
        Bits(self.0.checked_mul(k).expect("Bits::scale overflow"))
    }
}

impl Add for Bits {
    type Output = Bits;
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0.checked_add(rhs.0).expect("Bits addition overflow"))
    }
}

impl AddAssign for Bits {
    fn add_assign(&mut self, rhs: Bits) {
        *self = *self + rhs;
    }
}

impl Sub for Bits {
    type Output = Bits;
    fn sub(self, rhs: Bits) -> Bits {
        Bits(
            self.0
                .checked_sub(rhs.0)
                .expect("Bits subtraction underflow"),
        )
    }
}

impl SubAssign for Bits {
    fn sub_assign(&mut self, rhs: Bits) {
        *self = *self - rhs;
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        iter.fold(Bits::ZERO, Add::add)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}Mb", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}kb", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}b", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Bits::from_bytes(1500).as_bits(), 12_000);
        assert_eq!(Bits::from_kilobits(60).as_bits(), 60_000);
        assert_eq!(Bits::from_bits(7).as_bytes_floor(), 0);
        assert_eq!(Bits::from_bits(16).as_bytes_floor(), 2);
    }

    #[test]
    fn transmission_time_is_exact_for_paper_parameters() {
        // A 1500-byte packet at 50 kb/s takes exactly 0.24 s.
        let l = Bits::from_bytes(1500);
        let r = Rate::from_bps(50_000);
        assert_eq!(l.tx_time_ceil(r), Nanos::from_millis(240));
        assert_eq!(l.tx_time_floor(r), Nanos::from_millis(240));
        // At the 1.5 Mb/s link rate it takes exactly 8 ms (the CsVC error term).
        let c = Rate::from_bps(1_500_000);
        assert_eq!(l.tx_time_ceil(c), Nanos::from_millis(8));
    }

    #[test]
    fn transmission_time_rounding_directions() {
        let l = Bits::from_bits(10);
        let r = Rate::from_bps(3);
        // 10/3 s = 3.333..s
        assert_eq!(l.tx_time_floor(r).as_nanos(), 3_333_333_333);
        assert_eq!(l.tx_time_ceil(r).as_nanos(), 3_333_333_334);
    }

    #[test]
    fn arithmetic_and_saturation() {
        let a = Bits::from_bits(10);
        let b = Bits::from_bits(3);
        assert_eq!(a + b, Bits::from_bits(13));
        assert_eq!(a - b, Bits::from_bits(7));
        assert_eq!(b.saturating_sub(a), Bits::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.scale(4), Bits::from_bits(40));
        let total: Bits = [a, b, b].into_iter().sum();
        assert_eq!(total, Bits::from_bits(16));
    }
}
