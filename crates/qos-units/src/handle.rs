//! Generational dense handles.
//!
//! A [`Handle`] is a `u32` row index paired with a `u32` generation,
//! tagged with a zero-sized marker type so handles into different
//! arenas cannot be confused at compile time. The index addresses a
//! contiguous slot array directly — no hashing — and the generation
//! catches use-after-free: a slot's generation moves when the slot is
//! recycled, so a stale handle simply fails to resolve instead of
//! silently reading the slot's new occupant.
//!
//! The broker workspace uses these as the *internal* identifiers of
//! flows, paths and macroflows: wire-level ids (`FlowId`, `PathId`,
//! class numbers) are interned to handles exactly once at the COPS
//! boundary, and everything inboard addresses state by handle.
//!
//! All trait impls are written out by hand so the marker type needs no
//! bounds of its own (derives would demand `M: Clone + Eq + …` even
//! though no `M` value is ever stored).

use core::fmt;
use core::hash::{Hash, Hasher};
use core::marker::PhantomData;

/// A dense, generation-checked index into a typed arena.
///
/// `M` is a tag type (usually an empty enum) naming the arena family
/// the handle belongs to. The `fn() -> M` phantom keeps the handle
/// `Send + Sync + 'static` regardless of `M`.
pub struct Handle<M> {
    index: u32,
    generation: u32,
    _tag: PhantomData<fn() -> M>,
}

impl<M> Handle<M> {
    /// Builds a handle from its raw parts.
    #[must_use]
    pub const fn new(index: u32, generation: u32) -> Self {
        Handle {
            index,
            generation,
            _tag: PhantomData,
        }
    }

    /// The dense row index, ready for direct slot addressing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.index as usize
    }

    /// The generation the handle was minted at.
    #[must_use]
    pub const fn generation(self) -> u32 {
        self.generation
    }

    /// Packs the handle into one `u64` (`generation` high, `index`
    /// low) — convenient for logs and wire-format-free storage.
    #[must_use]
    pub const fn to_bits(self) -> u64 {
        ((self.generation as u64) << 32) | self.index as u64
    }

    /// Rebuilds a handle from [`Handle::to_bits`].
    #[must_use]
    pub const fn from_bits(bits: u64) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        Handle::new(bits as u32, (bits >> 32) as u32)
    }
}

impl<M> Clone for Handle<M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for Handle<M> {}

impl<M> PartialEq for Handle<M> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.generation == other.generation
    }
}

impl<M> Eq for Handle<M> {}

impl<M> PartialOrd for Handle<M> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Handle<M> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.index, self.generation).cmp(&(other.index, other.generation))
    }
}

impl<M> Hash for Handle<M> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.to_bits().hash(state);
    }
}

impl<M> fmt::Debug for Handle<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}@g{}", self.index, self.generation)
    }
}

impl<M> fmt::Display for Handle<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}@g{}", self.index, self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum TagA {}
    enum TagB {}

    #[test]
    fn roundtrips_through_bits() {
        let h: Handle<TagA> = Handle::new(7, 3);
        assert_eq!(h.index(), 7);
        assert_eq!(h.generation(), 3);
        assert_eq!(Handle::<TagA>::from_bits(h.to_bits()), h);
    }

    #[test]
    fn equality_requires_matching_generation() {
        let a: Handle<TagA> = Handle::new(1, 0);
        let b: Handle<TagA> = Handle::new(1, 1);
        assert_ne!(a, b);
        assert_eq!(a, Handle::new(1, 0));
    }

    #[test]
    fn tags_keep_arena_families_apart() {
        // Compile-time property: a Handle<TagA> is not a Handle<TagB>.
        fn takes_a(_: Handle<TagA>) {}
        takes_a(Handle::new(0, 0));
        let _b: Handle<TagB> = Handle::new(0, 0);
    }

    #[test]
    fn handles_are_send_sync_regardless_of_tag() {
        struct NotSync(#[allow(dead_code)] *const u8);
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Handle<NotSync>>();
    }
}
