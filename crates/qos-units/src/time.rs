//! Nanosecond-resolution time types: [`Nanos`] durations and [`Time`]
//! absolute instants.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::NANOS_PER_SEC;

/// A non-negative duration with nanosecond resolution.
///
/// `Nanos` is the unit of every delay bound, propagation delay, error term,
/// and inter-arrival spacing in the workspace. The maximum representable
/// duration (~584 years) is far beyond any simulation horizon.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable duration; used as an "infinite" sentinel
    /// in schedulability scans.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Constructs a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Constructs a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Constructs a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * NANOS_PER_SEC)
    }

    /// Constructs a duration from fractional seconds, rounding to the
    /// nearest nanosecond.
    ///
    /// Intended for configuration boundaries (parsing experiment parameters
    /// such as a 2.44 s delay bound) — never for arithmetic on the hot path.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large for the representation.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "Nanos::from_secs_f64: invalid seconds value {s}"
        );
        let ns = s * NANOS_PER_SEC as f64;
        assert!(
            ns <= u64::MAX as f64,
            "Nanos::from_secs_f64: duration overflow"
        );
        Nanos(ns.round() as u64)
    }

    /// Raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[must_use]
    pub const fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Checked addition.
    #[must_use]
    pub const fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Saturating addition: clamps at [`Nanos::MAX`].
    #[must_use]
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the duration by an integer scalar.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[must_use]
    pub fn scale(self, k: u64) -> Nanos {
        Nanos(
            self.0
                .checked_mul(k)
                .expect("Nanos::scale: duration overflow"),
        )
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.checked_add(rhs.0).expect("Nanos addition overflow"))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("Nanos subtraction underflow"),
        )
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        self.scale(rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An absolute instant on the simulation clock, measured in nanoseconds
/// since the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// The simulation epoch, t = 0.
    pub const ZERO: Time = Time(0);
    /// The far future; used as an "never" sentinel for departure times.
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs an instant from raw nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Constructs an instant from fractional seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or overflows the representation.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        Time(Nanos::from_secs_f64(s).as_nanos())
    }

    /// Raw nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Instant as fractional seconds since the epoch (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[must_use]
    pub const fn saturating_since(self, earlier: Time) -> Nanos {
        Nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`.
    #[must_use]
    pub const fn checked_since(self, earlier: Time) -> Option<Nanos> {
        match self.0.checked_sub(earlier.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }
}

impl Add<Nanos> for Time {
    type Output = Time;
    fn add(self, rhs: Nanos) -> Time {
        Time(
            self.0
                .checked_add(rhs.as_nanos())
                .expect("Time addition overflow"),
        )
    }
}

impl AddAssign<Nanos> for Time {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub<Nanos> for Time {
    type Output = Time;
    fn sub(self, rhs: Nanos) -> Time {
        Time(
            self.0
                .checked_sub(rhs.as_nanos())
                .expect("Time subtraction underflow"),
        )
    }
}

impl Sub<Time> for Time {
    type Output = Nanos;
    fn sub(self, rhs: Time) -> Nanos {
        Nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("Time difference underflow: rhs is later than lhs"),
        )
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Nanos::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Nanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Nanos::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Nanos::from_secs_f64(0.96).as_nanos(), 960_000_000);
        assert_eq!(Nanos::from_secs_f64(2.44).as_nanos(), 2_440_000_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Nanos::from_millis(10);
        let b = Nanos::from_millis(4);
        assert_eq!(a + b, Nanos::from_millis(14));
        assert_eq!(a - b, Nanos::from_millis(6));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.scale(3), Nanos::from_millis(30));
        assert_eq!(a / 2, Nanos::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_subtraction_underflow_panics() {
        let _ = Nanos::from_nanos(1) - Nanos::from_nanos(2);
    }

    #[test]
    fn time_and_duration_interact() {
        let t0 = Time::from_nanos(100);
        let t1 = t0 + Nanos::from_nanos(50);
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!(t1 - t0, Nanos::from_nanos(50));
        assert_eq!(t0.saturating_since(t1), Nanos::ZERO);
        assert_eq!(t1.checked_since(t0), Some(Nanos::from_nanos(50)));
        assert_eq!(t0.checked_since(t1), None);
    }

    #[test]
    fn sum_of_durations() {
        let parts = [
            Nanos::from_nanos(1),
            Nanos::from_nanos(2),
            Nanos::from_nanos(3),
        ];
        let total: Nanos = parts.into_iter().sum();
        assert_eq!(total, Nanos::from_nanos(6));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(3).to_string(), "3.000us");
        assert_eq!(Nanos::from_millis(8).to_string(), "8.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000000s");
    }
}
