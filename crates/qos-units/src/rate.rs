//! Bandwidth type: [`Rate`] in bits per second.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::ratio;
use crate::{Bits, Nanos, NANOS_PER_SEC};

/// A non-negative bandwidth, measured in bits per second.
///
/// Link capacities, reserved rates (`r`), sustained rates (`ρ`), peak rates
/// (`P`) and contingency bandwidths (`Δr`) are all `Rate`s.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Rate(u64);

impl Rate {
    /// Zero bandwidth.
    pub const ZERO: Rate = Rate(0);
    /// Maximum representable bandwidth; used as an "infinite capacity"
    /// sentinel for access links in the Figure-8 topology.
    pub const MAX: Rate = Rate(u64::MAX);

    /// Constructs a rate from raw bits per second.
    #[must_use]
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Constructs a rate from kilobits per second (1 kb/s = 1000 b/s).
    #[must_use]
    pub const fn from_kbps(kbps: u64) -> Self {
        Rate(kbps * 1_000)
    }

    /// Constructs a rate from megabits per second (1 Mb/s = 10^6 b/s).
    #[must_use]
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Raw bits-per-second value.
    #[must_use]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Rate as fractional megabits per second (for reporting only).
    #[must_use]
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this rate is the zero rate.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Volume transferred at this rate over `dur`, rounded **down**.
    ///
    /// Conservative for service guarantees: a scheduler promising `r` is
    /// never credited with more service than it actually delivered.
    #[must_use]
    pub fn bits_in_floor(self, dur: Nanos) -> Bits {
        Bits::from_bits(ratio::mul_div_floor(self.0, dur.as_nanos(), NANOS_PER_SEC))
    }

    /// Volume transferred at this rate over `dur`, rounded **up**.
    ///
    /// Conservative for arrival envelopes: a source regulated to `ρ` is
    /// never assumed to have sent less than it may have.
    #[must_use]
    pub fn bits_in_ceil(self, dur: Nanos) -> Bits {
        Bits::from_bits(ratio::mul_div_ceil(self.0, dur.as_nanos(), NANOS_PER_SEC))
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Rate) -> Rate {
        Rate(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[must_use]
    pub const fn checked_sub(self, rhs: Rate) -> Option<Rate> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Rate(v)),
            None => None,
        }
    }

    /// Saturating addition, clamping at [`Rate::MAX`].
    ///
    /// Used when accumulating reservations against an infinite-capacity
    /// access link, where overflow is expected and harmless.
    #[must_use]
    pub const fn saturating_add(self, rhs: Rate) -> Rate {
        Rate(self.0.saturating_add(rhs.0))
    }

    /// Multiplies by an integer scalar.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    #[must_use]
    pub fn scale(self, k: u64) -> Rate {
        Rate(self.0.checked_mul(k).expect("Rate::scale overflow"))
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0.checked_add(rhs.0).expect("Rate addition overflow"))
    }
}

impl AddAssign for Rate {
    fn add_assign(&mut self, rhs: Rate) {
        *self = *self + rhs;
    }
}

impl Sub for Rate {
    type Output = Rate;
    fn sub(self, rhs: Rate) -> Rate {
        Rate(
            self.0
                .checked_sub(rhs.0)
                .expect("Rate subtraction underflow"),
        )
    }
}

impl SubAssign for Rate {
    fn sub_assign(&mut self, rhs: Rate) {
        *self = *self - rhs;
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, Add::add)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "inf")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}Mb/s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}kb/s", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}b/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Rate::from_kbps(50).as_bps(), 50_000);
        assert_eq!(Rate::from_mbps(2).as_bps(), 2_000_000);
        assert!((Rate::from_bps(1_500_000).as_mbps_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bits_in_over_interval() {
        let r = Rate::from_bps(50_000);
        // 50 kb/s for 0.96 s = 48000 bits exactly.
        assert_eq!(
            r.bits_in_floor(Nanos::from_millis(960)),
            Bits::from_bits(48_000)
        );
        assert_eq!(
            r.bits_in_ceil(Nanos::from_millis(960)),
            Bits::from_bits(48_000)
        );
        // 3 b/s over 1 ns: floor 0, ceil 1.
        let tiny = Rate::from_bps(3);
        assert_eq!(tiny.bits_in_floor(Nanos::from_nanos(1)), Bits::ZERO);
        assert_eq!(tiny.bits_in_ceil(Nanos::from_nanos(1)), Bits::from_bits(1));
    }

    #[test]
    fn arithmetic() {
        let a = Rate::from_bps(100);
        let b = Rate::from_bps(40);
        assert_eq!(a + b, Rate::from_bps(140));
        assert_eq!(a - b, Rate::from_bps(60));
        assert_eq!(b.saturating_sub(a), Rate::ZERO);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(Rate::MAX.saturating_add(a), Rate::MAX);
        assert_eq!(a.scale(3), Rate::from_bps(300));
        let total: Rate = [a, b].into_iter().sum();
        assert_eq!(total, Rate::from_bps(140));
    }

    #[test]
    fn infinite_capacity_sentinel_displays() {
        assert_eq!(Rate::MAX.to_string(), "inf");
        assert_eq!(Rate::from_bps(999).to_string(), "999b/s");
    }
}
