//! 128-bit multiply-divide helpers with directed rounding.
//!
//! Every delay-bound and schedulability formula in the workspace reduces to
//! expressions of the form `a * b / c` on 64-bit operands. Computing them in
//! `u128` makes overflow impossible for any physically meaningful operand
//! combination (rates below 2^64 bps, durations below 2^64 ns), and the
//! explicit floor/ceil variants let call sites state which direction is
//! conservative for them.

/// Computes `a * b / c` rounded toward zero (floor, as all operands are
/// unsigned).
///
/// # Panics
///
/// Panics if `c == 0` or if the exact result does not fit in `u64`. Both
/// conditions indicate a logic error at the call site (division by a zero
/// rate, or a delay bound beyond ~584 years), not a recoverable runtime
/// situation.
#[must_use]
pub fn mul_div_floor(a: u64, b: u64, c: u64) -> u64 {
    assert!(c != 0, "mul_div_floor: division by zero");
    let prod = u128::from(a) * u128::from(b);
    let q = prod / u128::from(c);
    u64::try_from(q).expect("mul_div_floor: quotient exceeds u64")
}

/// Computes `a * b / c` rounded away from zero (ceiling).
///
/// # Panics
///
/// Panics if `c == 0` or if the exact result does not fit in `u64`.
#[must_use]
pub fn mul_div_ceil(a: u64, b: u64, c: u64) -> u64 {
    assert!(c != 0, "mul_div_ceil: division by zero");
    let prod = u128::from(a) * u128::from(b);
    let c = u128::from(c);
    let q = prod.div_ceil(c);
    u64::try_from(q).expect("mul_div_ceil: quotient exceeds u64")
}

/// Computes `a / b` on `u64` rounded up.
///
/// # Panics
///
/// Panics if `b == 0`.
#[must_use]
pub fn div_ceil(a: u64, b: u64) -> u64 {
    assert!(b != 0, "div_ceil: division by zero");
    a.div_ceil(b)
}

/// Computes `num / den` on `u128` operands, rounded down, narrowing to
/// `u64`.
///
/// Admission-control formulas accumulate products like `T_on · P` that
/// exceed 64 bits before the final division; call sites build the numerator
/// in `u128` and narrow here.
///
/// # Panics
///
/// Panics if `den == 0` or the quotient exceeds `u64`.
#[must_use]
pub fn u128_div_floor(num: u128, den: u128) -> u64 {
    assert!(den != 0, "u128_div_floor: division by zero");
    u64::try_from(num / den).expect("u128_div_floor: quotient exceeds u64")
}

/// Computes `num / den` on `u128` operands, rounded up, narrowing to `u64`.
///
/// # Panics
///
/// Panics if `den == 0` or the quotient exceeds `u64`.
#[must_use]
pub fn u128_div_ceil(num: u128, den: u128) -> u64 {
    assert!(den != 0, "u128_div_ceil: division by zero");
    u64::try_from(num.div_ceil(den)).expect("u128_div_ceil: quotient exceeds u64")
}

/// Compares the rationals `a0/b0` and `a1/b1` exactly, without division.
///
/// Useful when an admission test needs an exact comparison between two
/// derived quantities (e.g. two candidate rates expressed as ratios) and
/// rounding either side would make the comparison direction-dependent.
///
/// # Panics
///
/// Panics if either denominator is zero.
#[must_use]
pub fn cmp_ratio(a0: u64, b0: u64, a1: u64, b1: u64) -> core::cmp::Ordering {
    assert!(b0 != 0 && b1 != 0, "cmp_ratio: zero denominator");
    let lhs = u128::from(a0) * u128::from(b1);
    let rhs = u128::from(a1) * u128::from(b0);
    lhs.cmp(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn floor_and_ceil_agree_on_exact_division() {
        assert_eq!(mul_div_floor(48_000, 1_000_000_000, 50_000), 960_000_000);
        assert_eq!(mul_div_ceil(48_000, 1_000_000_000, 50_000), 960_000_000);
    }

    #[test]
    fn ceil_rounds_up_inexact_division() {
        assert_eq!(mul_div_floor(10, 10, 3), 33);
        assert_eq!(mul_div_ceil(10, 10, 3), 34);
    }

    #[test]
    fn handles_products_beyond_u64() {
        // 2^63 * 4 / 8 = 2^62: the product overflows u64 but the result fits.
        let big = 1u64 << 63;
        assert_eq!(mul_div_floor(big, 4, 8), 1u64 << 62);
        assert_eq!(mul_div_ceil(big, 4, 8), 1u64 << 62);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn floor_rejects_zero_divisor() {
        let _ = mul_div_floor(1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "quotient exceeds u64")]
    fn overflowing_quotient_panics() {
        let _ = mul_div_floor(u64::MAX, u64::MAX, 1);
    }

    #[test]
    fn div_ceil_behaviour() {
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(0, 3), 0);
    }

    #[test]
    fn ratio_comparison_is_exact() {
        // 1/3 vs 333333333/1000000000: the former is strictly larger.
        assert_eq!(
            cmp_ratio(1, 3, 333_333_333, 1_000_000_000),
            Ordering::Greater
        );
        assert_eq!(cmp_ratio(2, 4, 1, 2), Ordering::Equal);
        assert_eq!(cmp_ratio(1, 2, 2, 3), Ordering::Less);
    }
}
