//! `bb-loadgen` — open-loop COPS load generator for `bb-server`.
//!
//! Drives the daemon from N concurrent edge-router connections, each
//! sending a seeded open-loop Poisson stream of admission requests for
//! the pods it owns (pod `p` belongs to client `p mod N`, so every
//! pod's request order is fixed by one connection). Reports admission
//! throughput, setup-latency percentiles, and — with `--verify` —
//! checks every decision flow-for-flow against a serial [`Broker`] fed
//! the same requests in the same per-pod order.
//!
//! ```text
//! bb-loadgen [--pods 64] [--hops 5] [--clients 8] [--requests 400]
//!            [--rate 4000] [--seed 1] [--workers 4] [--io-threads 2]
//!            [--queue-depth 4096] [--verify] [--out BENCH_loadgen.json]
//!            [--connections N]    # swarm mode: N persistent edge conns
//!            [--drivers D]        # swarm driver threads (default: --clients)
//!            [--sample-ms 50]     # telemetry poll period (0 disables)
//!            [--addr HOST:PORT]   # drive an external daemon instead
//!            [--stats-addr H:P]   # its telemetry endpoint, for --addr
//!            [--domains N]        # federation: drive an N-domain broker chain
//!            [--d-req-ms 2440]    # per-flow end-to-end delay requirement
//!            [--durable]          # journal + snapshot the hosted daemon
//!            [--data-dir PATH] [--wal-flush-ms 5] [--snapshot-every 10000]
//!            [--no-batched-decide] # hosted daemon decides under the shard lock
//!            [--failover]         # measured kill-the-primary failover run
//!            [--server-bin PATH]  # bb-server binary for --failover phases
//!            [--scenario SPEC]    # ISP subscriber-tree scenario run
//!            [--time-scale 60]    # scenario replay speed-up factor
//!            [--ramp-threads 8]   # resident-flow ramp connections
//!            [--probe 1024]       # residency-probe sample size
//! ```
//!
//! `--failover` runs the high-availability experiment end to end with
//! **real `bb-server` processes** (so the primary can be SIGKILLed):
//! first a durable baseline run, then the same workload against a
//! durable primary with a warm standby attached (the replication tax),
//! then a kill run — the primary is SIGKILLed mid-load, the standby
//! auto-promotes, every client re-sends its unanswered requests on the
//! promoted daemon, and a final probe pass re-REQs every flow the
//! primary *acknowledged* admitting, requiring the duplicate to be
//! refused (resident). An `Install` answer there means an acknowledged
//! flow was lost — the run fails. The report (`BENCH_failover.json` by
//! default) carries both throughputs, their ratio, the per-client
//! failover times (kill → first decision from the standby), and the
//! loss count; `bench_gate --failover` gates it.
//!
//! `--scenario <spec.json>` replaces the symmetric pod-chain workload
//! with an ISP-shaped one (see [`bb_scenario`]): a subscriber tree
//! (site → access-point → client, oversubscribed per tier) is hosted
//! in-process and driven in three phases. **Ramp** admits and *holds*
//! `resident_target` per-flow reservations round-robin over every
//! client, reporting sustained decisions/s and the daemon's RSS growth
//! per resident flow. **Replay** runs the spec's deterministic event
//! trace — diurnal arrivals, class-join churn, flash crowds, link
//! failures (new admissions re-route to the AP's backup uplink while
//! the primary is down) — paced at `--time-scale` × real time.
//! **Probe** re-REQs a sample of the ramp's flows (a resident flow
//! refuses its duplicate) and of the replay's departed flows (a
//! drained flow must *not*), folding the result into
//! `verified_sampled`. The report (`BENCH_scenario.json` by default)
//! is gated by `bench_gate --scenario`.
//!
//! With `--connections N` each client stream multiplexes its open-loop
//! schedule over its share of N persistent nonblocking connections (a
//! [`netpoll`] poller per driver thread), round-robin per request — the
//! high-fan-in shape of a production broker fronting thousands of edge
//! routers. All N connections are established **before** any load is
//! offered, stay open for the whole run, and the report carries
//! `concurrent_connections` plus the per-connection decision fairness
//! spread. `--drivers D` runs the `--clients` seeded streams on D OS
//! threads (workload identical, fewer threads) so the generator's own
//! scheduling doesn't crowd the daemon off small machines. `--verify`
//! is unavailable in swarm mode: replies arriving across many sockets
//! no longer pin each pod's request order, so the serial-replay
//! comparison is not meaningful.
//!
//! `--domains N` drives the **edge** domain of an N-broker federation
//! chain (DESIGN.md §4i): without `--addr` the generator hosts all N
//! daemons in-process, launched terminal-first and peered into a chain,
//! and the clients drive domain 0. Every domain serves the same
//! `--pods x --hops` topology, so the stitched fabric is equivalent to
//! one flat broker over `--pods x (--hops x N)` — which is exactly what
//! `--verify` replays serially, checking every cross-domain decision
//! flow-for-flow. The report gains per-domain daemon reports so a run
//! can also assert that a refusal left no booking resident anywhere.
//! The default report name becomes `BENCH_federation.json`.
//!
//! `--durable` hosts the daemon with a write-ahead journal and MIB
//! snapshots under `--data-dir` (a fresh temp directory by default),
//! measuring the durability overhead against the same workload. After
//! the run the generator **restarts** a daemon from the data directory
//! and checks the recovered state matches what the serving daemon shut
//! down with — the result rides in the report's `durable` row and is
//! folded into `verified`.
//!
//! Without `--addr` the generator hosts the daemon in-process on an
//! ephemeral port (still exercising the full TCP path), so one command
//! reproduces the concurrent-broker experiment end to end.
//!
//! While the run is in flight a sampler thread polls the daemon's
//! telemetry endpoint (`GET /stats`) every `--sample-ms` and folds the
//! snapshots into the report as a **time series** — counters, queue
//! depths, and latency-histogram quantiles over time, not only final
//! aggregates — so `BENCH_loadgen.json` shows how the run unfolded.

/// Counting global allocator (`--features count-allocs`): wraps the
/// system allocator with a relaxed counter per allocation so a run can
/// report `allocs_per_decision` — the before/after metric for state-
/// layout work. The daemon is hosted in-process, so the counter covers
/// the full serving path (plus the client-side codec, identical across
/// runs). Compiled out entirely without the feature.
#[cfg(feature = "count-allocs")]
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: delegates verbatim to the system allocator; the counter
    // never affects layout or returned pointers.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: Counting = Counting;

    /// Allocations since process start.
    pub fn total() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

use std::collections::HashMap;
use std::io::{BufRead, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

use bb_core::broker::{Broker, BrokerConfig};
use bb_core::contingency::ContingencyPolicy;
use bb_core::cops::{self, Decision};
use bb_core::signaling::{FlowRequest, Reject, ServiceKind};
use bb_scenario::{EventKind, ScenarioSpec, ScenarioTrace, SubscriberTree};
use bb_server::{
    fetch_stats, BbServer, CopsClient, DurableOptions, FrameReader, ServerConfig, ServerReport,
    StatsSnapshot,
};
use netpoll::{Event, Interest, Poller, Token};
use netsim::topology::{SchedulerSpec, Topology};
use qos_units::{Bits, Nanos, Rate, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The paper's "type 0" audio-like flow: 16 kb/s token rate, 64 kb/s
/// peak, 2000 B bucket, 125 B packets.
fn type0_profile() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bytes(2_000),
        Rate::from_bps(16_000),
        Rate::from_bps(64_000),
        Bits::from_bytes(125),
    )
    .expect("well-formed type-0 profile")
}

/// Deterministic request content for client `c` — independent of
/// timing, so `--verify` can regenerate the exact same stream. The
/// delay requirement comes from `--d-req-ms` (default the paper's
/// 2.44 s operating point); a federation run tightens it so the union
/// chain's `r_min` rises above ρ and the granted rate actually depends
/// on the accumulated hop count.
fn requests_for(c: u64, clients: u64, pods: usize, n: usize) -> Vec<FlowRequest> {
    let owned: Vec<usize> = (0..pods).filter(|p| *p as u64 % clients == c).collect();
    let d_req = Nanos::from_millis(arg("--d-req-ms", 2_440));
    (0..n)
        .map(|k| FlowRequest {
            flow: FlowId((c << 32) | k as u64),
            profile: type0_profile(),
            d_req,
            service: ServiceKind::PerFlow,
            path: bb_core::PathId(owned[k % owned.len()] as u64),
        })
        .collect()
}

/// One client's observed decision for a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Admit { rate_bps: u64, delay_ns: u64 },
    Deny(Reject),
}

struct ClientResult {
    /// `request index k → outcome`, in whatever order DECs arrived.
    outcomes: HashMap<u64, Outcome>,
    /// Setup latency (send → DEC) per answered request, nanoseconds.
    latencies: Vec<u64>,
    /// Decisions received per connection this client drove (one entry
    /// in classic mode, `--connections`-share entries in swarm mode).
    per_conn: Vec<u64>,
}

/// How evenly the decision stream spread over the persistent
/// connections of a `--connections` run.
#[derive(serde::Serialize)]
struct ConnectionFairness {
    /// Fewest decisions any single connection carried.
    decisions_min: u64,
    /// Most decisions any single connection carried.
    decisions_max: u64,
    decisions_mean: f64,
    /// `(max - min) / mean` — 0 is perfectly fair.
    spread: f64,
    /// Connections that carried no decision at all (excluded from the
    /// spread statistics above).
    idle_connections: u64,
}

/// Fairness over the connections that carried at least one decision.
///
/// A swarm run can open more connections than the seeded streams ever
/// reach (`--connections` exceeding the per-stream round-robin shares),
/// leaving permanently idle entries. Folding those zeros into the mean
/// understates it — and with every connection idle the spread became
/// 0/0 = NaN. Idle connections are therefore reported separately and
/// excluded from min/max/mean; `None` when nothing was decided on any
/// connection.
fn fairness(per_conn: &[u64]) -> Option<ConnectionFairness> {
    let idle = per_conn.iter().filter(|&&d| d == 0).count() as u64;
    let live: Vec<u64> = per_conn.iter().copied().filter(|&d| d > 0).collect();
    let (min, max) = (*live.iter().min()?, *live.iter().max()?);
    let mean = live.iter().sum::<u64>() as f64 / live.len() as f64;
    Some(ConnectionFairness {
        decisions_min: min,
        decisions_max: max,
        decisions_mean: mean,
        spread: (max - min) as f64 / mean,
        idle_connections: idle,
    })
}

/// One telemetry poll folded into the report's time series.
#[derive(serde::Serialize)]
struct TimelinePoint {
    /// Seconds since the load started.
    t_s: f64,
    /// Decisions that reached a shard so far (admitted + rejected).
    decided: u64,
    admitted: u64,
    rejected: u64,
    overloaded: u64,
    released: u64,
    /// Deepest shard job queue at the poll.
    queue_depth_max: u64,
    /// Per-shard admitted counts — shard imbalance over time.
    admitted_per_shard: Vec<u64>,
    decision_p50_us: Option<f64>,
    decision_p99_us: Option<f64>,
    setup_p50_us: Option<f64>,
    setup_p99_us: Option<f64>,
}

fn timeline_point(t_s: f64, snap: &StatsSnapshot) -> TimelinePoint {
    let decision = snap.metrics.decision_ns_merged();
    let q =
        |h: &bb_telemetry::HistogramSnapshot, p: f64| h.quantile_ns(p).map(|ns| ns as f64 / 1e3);
    TimelinePoint {
        t_s,
        decided: snap.metrics.decided(),
        admitted: snap.metrics.admitted,
        rejected: snap.metrics.rejected,
        overloaded: snap.metrics.overloaded,
        released: snap.metrics.released,
        queue_depth_max: snap.metrics.queue_depth_max(),
        admitted_per_shard: snap.metrics.shards.iter().map(|s| s.admitted).collect(),
        decision_p50_us: q(&decision, 0.50),
        decision_p99_us: q(&decision, 0.99),
        setup_p50_us: q(&snap.metrics.setup_ns, 0.50),
        setup_p99_us: q(&snap.metrics.setup_ns, 0.99),
    }
}

/// Report time-series cap: the sampler decimates beyond this many
/// points (even, so decimation preserves the stride invariant).
const TIMELINE_CAP: usize = 600;

/// On-the-fly decimator bounding the report's telemetry time series.
///
/// A long run polled every `--sample-ms` used to grow `timeline[]`
/// without bound; this keeps at most `cap` points spanning the whole
/// run. Samples are kept when their arrival index is a multiple of the
/// current stride; when the buffer would overflow the cap, every other
/// held point is dropped and the stride doubles — so the retained
/// points are always the multiples of one power-of-two stride,
/// starting at the very first sample.
struct Downsampler<T> {
    points: Vec<T>,
    cap: usize,
    stride: u64,
    seen: u64,
}

impl<T> Downsampler<T> {
    fn new(cap: usize) -> Self {
        assert!(
            cap >= 2 && cap.is_multiple_of(2),
            "cap must be even so decimation keeps retained indices on the doubled stride"
        );
        Downsampler {
            points: Vec::new(),
            cap,
            stride: 1,
            seen: 0,
        }
    }

    /// Offers the next sample in arrival order.
    fn offer(&mut self, point: T) {
        if self.seen.is_multiple_of(self.stride) {
            self.points.push(point);
            if self.points.len() > self.cap {
                let mut i = 0usize;
                self.points.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.seen += 1;
    }

    /// The decimated series, in arrival order.
    fn into_points(self) -> Vec<T> {
        self.points
    }
}

/// The durability row of the report: what the journal cost, and
/// whether a restart from the data directory recovered the daemon's
/// exact final state.
#[derive(serde::Serialize)]
struct DurableReport {
    /// Group-commit interval the run used.
    wal_flush_ms: u64,
    /// Journal-rotation threshold the run used.
    snapshot_every: u64,
    /// WAL fsyncs across all shards (group commits + rotation seals).
    fsync_count: u64,
    fsync_p50_us: Option<f64>,
    fsync_p99_us: Option<f64>,
    /// Latest snapshot sizes summed over shards, bytes.
    snapshot_bytes: u64,
    /// Wall time for the restart check's `BbServer::start` — bind,
    /// recover every shard (snapshot load + journal replay), spawn.
    restart_recovery_ms: f64,
    /// Journal records the restart check replayed across shards.
    recovery_replayed_records: u64,
    /// Flow records resident after recovery.
    recovered_resident_flows: u64,
    /// Whether recovery reproduced the serving daemon's final state
    /// (resident flows and per-shard admission counters).
    recovery_matches: bool,
}

#[derive(serde::Serialize)]
struct LoadgenReport {
    pods: usize,
    hops: usize,
    /// Federation chain length (`--domains`); 1 is the flat single-
    /// domain run. Setup latencies in a multi-domain report are
    /// **cross-domain**: each admission traversed the whole chain.
    domains: usize,
    clients: usize,
    requests_per_client: usize,
    offered_rate_per_client_hz: f64,
    seed: u64,
    /// Whether the hosted daemon ran the lock-free batched decide path
    /// (seqlock path summaries + path×class grouping). Deliberately not
    /// a gate config field: the batched-gain CI gate compares an
    /// on-run against an off-run of the same workload.
    batched_decide: bool,
    decisions: u64,
    admitted: u64,
    rejected: u64,
    overloaded: u64,
    /// Persistent connections held open across the whole run
    /// (`--connections` swarm mode); `None` for the classic
    /// one-connection-per-client run.
    concurrent_connections: Option<usize>,
    /// How evenly the decision stream spread over those connections.
    connection_fairness: Option<ConnectionFairness>,
    elapsed_s: f64,
    throughput_decisions_per_s: f64,
    setup_latency_p50_us: f64,
    setup_latency_p90_us: f64,
    setup_latency_p99_us: f64,
    /// Decide-phase path-summary cache effectiveness across all shards
    /// (hits / lookups); `None` when the daemon exposed no telemetry or
    /// no admission ever consulted the cache.
    path_cache_hit_rate: Option<f64>,
    /// Process-wide heap allocations per decision across the load
    /// window (daemon + client codec); `None` unless the binary was
    /// built with `--features count-allocs`.
    allocs_per_decision: Option<f64>,
    verified: Option<bool>,
    /// Durability cost and the restart-recovery check (`--durable`).
    durable: Option<DurableReport>,
    /// Telemetry polls taken while the load ran.
    timeline: Vec<TimelinePoint>,
    /// Final stats snapshot (counters, histograms, classes) fetched
    /// from the telemetry endpoint after the last decision.
    stats: Option<StatsSnapshot>,
    server: Option<ServerReport>,
    /// Hosted downstream federation domains in chain order (the domain
    /// the edge dials first, the terminal last); empty unless
    /// `--domains` > 1 hosted the chain in-process.
    peer_servers: Vec<ServerReport>,
    /// Whether every downstream domain finished holding exactly the
    /// edge domain's resident flows — the zero-residue check on the
    /// federation abort paths. `None` for single-domain or external
    /// runs.
    federation_residency_ok: Option<bool>,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

/// Drives one connection: a sender thread paces the Poisson schedule,
/// this thread reads DECs until every request is answered.
fn run_client(
    addr: String,
    c: u64,
    reqs: Vec<FlowRequest>,
    rate_hz: f64,
    seed: u64,
    ready: Arc<Barrier>,
) -> std::io::Result<ClientResult> {
    let stream = TcpStream::connect(&addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut wstream = stream.try_clone()?;
    // Every client is connected before any load is offered, so the
    // measured window starts with the full connection count open.
    ready.wait();

    let n = reqs.len();
    let send_at: Arc<Mutex<Vec<Option<Instant>>>> = Arc::new(Mutex::new(vec![None; n]));
    let sender_times = Arc::clone(&send_at);
    let sender = std::thread::Builder::new()
        .name(format!("loadgen-send-{c}"))
        .spawn(move || -> std::io::Result<()> {
            let mut rng = SmallRng::seed_from_u64(seed ^ (c.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let start = Instant::now();
            let mut next_at = 0.0f64;
            for (k, req) in reqs.iter().enumerate() {
                // Open loop: arrivals follow the schedule, not the
                // server; a slow server sees the queue build up.
                next_at += -rng.gen_range(f64::MIN_POSITIVE..1.0).ln() / rate_hz;
                let due = start + Duration::from_secs_f64(next_at);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                sender_times.lock().expect("sender clock lock")[k] = Some(Instant::now());
                wstream.write_all(&cops::encode_request(req))?;
            }
            Ok(())
        })
        .expect("spawn sender thread");

    let mut outcomes = HashMap::new();
    let mut latencies = Vec::with_capacity(n);
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 4096];
    let mut rstream = stream;
    let mut idle_reads = 0u32;
    'recv: while outcomes.len() < n {
        loop {
            match reader.next_frame() {
                Ok(Some(wire)) => {
                    let recv_at = Instant::now();
                    let mut buf = wire;
                    let frame = cops::decode_frame(&mut buf).expect("server sent valid COPS");
                    let decision = cops::decode_decision(&frame).expect("server sent a DEC");
                    let (flow, outcome) = match decision {
                        Decision::Install(res) => (
                            res.flow,
                            Outcome::Admit {
                                rate_bps: res.rate.as_bps(),
                                delay_ns: res.delay.as_nanos(),
                            },
                        ),
                        Decision::Reject { flow, cause } => (flow, Outcome::Deny(cause)),
                        Decision::UnknownFlow { flow } => {
                            panic!("unexpected unknown-flow decision for {flow}")
                        }
                    };
                    let k = flow.0 & 0xFFFF_FFFF;
                    if let Some(at) = send_at.lock().expect("reader clock lock")[k as usize] {
                        latencies.push(recv_at.duration_since(at).as_nanos() as u64);
                    }
                    outcomes.insert(k, outcome);
                }
                Ok(None) => break,
                Err(e) => panic!("server broke framing: {e}"),
            }
        }
        // Re-check before blocking: the drain above may have consumed the
        // final DEC, and falling into the timed read anyway would tax every
        // run with one full read-timeout of dead air after the last reply.
        if outcomes.len() >= n {
            break 'recv;
        }
        match rstream.read(&mut chunk) {
            Ok(0) => break 'recv,
            Ok(got) => {
                idle_reads = 0;
                reader.extend(&chunk[..got]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                idle_reads += 1;
                // 10 s of silence after everything was sent: give up
                // rather than hang the benchmark.
                if idle_reads > 50 && sender.is_finished() {
                    break 'recv;
                }
            }
            Err(e) => return Err(e),
        }
    }
    sender.join().expect("sender thread panicked")?;
    let per_conn = vec![outcomes.len() as u64];
    Ok(ClientResult {
        outcomes,
        latencies,
        per_conn,
    })
}

/// One persistent connection of a swarm client: its socket, framing
/// state, and any bytes the kernel has not yet accepted.
struct Edge {
    stream: TcpStream,
    reader: FrameReader,
    /// Encoded requests waiting for the socket to accept them, in send
    /// order; non-empty only while the kernel send buffer is full.
    out: Vec<u8>,
    decided: u64,
    open: bool,
}

impl Edge {
    /// Pushes what the kernel will take; returns `false` when the
    /// connection died underneath the write.
    fn flush(&mut self) -> bool {
        while self.open && !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => self.open = false,
                Ok(wrote) => {
                    self.out.drain(..wrote);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => self.open = false,
            }
        }
        self.open
    }
}

/// Connects with a few retries: a daemon absorbing thousands of
/// simultaneous connects can transiently overflow its accept backlog.
fn connect_retry(addr: &str) -> std::io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..5u32 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20 << attempt));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// One client's worth of work inside a swarm driver: its pre-encoded
/// request stream, Poisson schedule, and the slice of the driver's
/// edges it multiplexes over.
struct Stream {
    /// Client index — the high word of every flow id it emits.
    c: u64,
    wires: Vec<bytes::Bytes>,
    /// Absolute send deadlines, filled once the barrier releases.
    due: Vec<Instant>,
    send_at: Vec<Option<Instant>>,
    next_k: usize,
    /// Its edges are `edge_base .. edge_base + conns` in the driver.
    edge_base: usize,
    conns: usize,
}

/// Drives several swarm clients from one OS thread: each client keeps
/// the same seeded open-loop Poisson stream as [`run_client`],
/// multiplexed round-robin over its own persistent nonblocking
/// connections, all behind one shared [`netpoll`] poller. Pacing and
/// reply collection share the thread — the poller's wait timeout is
/// clamped to the earliest due send. Decoupling driver threads from
/// workload clients keeps the generator's own scheduling overhead off
/// the measurement when cores are scarce.
fn run_swarm_driver(
    addr: String,
    clients: Vec<(u64, Vec<FlowRequest>, usize)>,
    rate_hz: f64,
    seed: u64,
    ready: Arc<Barrier>,
) -> std::io::Result<ClientResult> {
    let mut edges = Vec::new();
    let mut streams = Vec::with_capacity(clients.len());
    let mut poller = Poller::new()?;
    for (c, reqs, conns) in clients {
        let edge_base = edges.len();
        for _ in 0..conns {
            let stream = connect_retry(&addr)?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            poller.register(stream.as_raw_fd(), Token(edges.len()), Interest::READ)?;
            edges.push(Edge {
                stream,
                reader: FrameReader::new(),
                out: Vec::new(),
                decided: 0,
                open: true,
            });
        }
        // Encode every request before the measured window opens: the
        // swarm exists to measure the daemon under fan-in, not the
        // generator's own encoder.
        let n = reqs.len();
        streams.push(Stream {
            c,
            wires: reqs.iter().map(cops::encode_request).collect(),
            due: Vec::with_capacity(n),
            send_at: vec![None; n],
            next_k: 0,
            edge_base,
            conns,
        });
    }
    ready.wait();

    // The full Poisson schedules up front: identical increments to the
    // classic sender, so `--connections` changes only the multiplexing.
    let start = Instant::now();
    let mut total = 0usize;
    for s in &mut streams {
        let mut rng = SmallRng::seed_from_u64(seed ^ (s.c.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let mut next_at = 0.0f64;
        for _ in 0..s.wires.len() {
            next_at += -rng.gen_range(f64::MIN_POSITIVE..1.0).ln() / rate_hz;
            s.due.push(start + Duration::from_secs_f64(next_at));
        }
        total += s.wires.len();
    }

    let mut outcomes = HashMap::new();
    let mut latencies = Vec::with_capacity(total);
    let mut events: Vec<Event> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Edges whose `out` buffer is non-empty, retried every pass.
    let mut clogged: Vec<usize> = Vec::new();
    let mut last_progress = Instant::now();
    while outcomes.len() < total {
        // Offer every due request on its stream's round-robin edge.
        let now = Instant::now();
        let mut all_sent = true;
        let mut next_due: Option<Instant> = None;
        for s in &mut streams {
            while s.next_k < s.wires.len() && s.due[s.next_k] <= now {
                let i = s.edge_base + s.next_k % s.conns;
                let edge = &mut edges[i];
                if edge.open {
                    let was_clear = edge.out.is_empty();
                    edge.out.extend_from_slice(&s.wires[s.next_k]);
                    s.send_at[s.next_k] = Some(Instant::now());
                    edge.flush();
                    if edge.open && !edge.out.is_empty() && was_clear {
                        clogged.push(i);
                    }
                }
                s.next_k += 1;
            }
            if s.next_k < s.wires.len() {
                all_sent = false;
                let d = s.due[s.next_k];
                next_due = Some(next_due.map_or(d, |nd| nd.min(d)));
            }
        }
        // Retry kernel-blocked writes every pass; the wait timeout
        // below bounds how long a clogged edge can stall.
        clogged.retain(|&i| {
            let edge = &mut edges[i];
            edge.flush();
            edge.open && !edge.out.is_empty()
        });

        let timeout = next_due.map_or(Duration::from_millis(10), |d| {
            d.saturating_duration_since(Instant::now())
                .min(Duration::from_millis(10))
        });
        events.clear();
        poller.wait(&mut events, Some(timeout))?;
        let mut progressed = false;
        for ev in &events {
            let i = ev.token.0;
            let edge = &mut edges[i];
            if !edge.open {
                continue;
            }
            // Edge-triggered: drain until the socket runs dry.
            loop {
                match edge.stream.read(&mut chunk) {
                    Ok(0) => {
                        edge.open = false;
                        break;
                    }
                    Ok(got) => edge.reader.extend(&chunk[..got]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        edge.open = false;
                        break;
                    }
                }
            }
            while let Some(wire) = edge.reader.next_frame().expect("server broke framing") {
                let recv_at = Instant::now();
                let mut buf = wire;
                let frame = cops::decode_frame(&mut buf).expect("server sent valid COPS");
                let decision = cops::decode_decision(&frame).expect("server sent a DEC");
                let (flow, outcome) = match decision {
                    Decision::Install(res) => (
                        res.flow,
                        Outcome::Admit {
                            rate_bps: res.rate.as_bps(),
                            delay_ns: res.delay.as_nanos(),
                        },
                    ),
                    Decision::Reject { flow, cause } => (flow, Outcome::Deny(cause)),
                    Decision::UnknownFlow { flow } => {
                        panic!("unexpected unknown-flow decision for {flow}")
                    }
                };
                let (c, k) = (flow.0 >> 32, (flow.0 & 0xFFFF_FFFF) as usize);
                if let Some(s) = streams.iter().find(|s| s.c == c) {
                    if let Some(at) = s.send_at[k] {
                        latencies.push(recv_at.duration_since(at).as_nanos() as u64);
                    }
                }
                outcomes.insert(flow.0, outcome);
                edge.decided += 1;
                progressed = true;
            }
            if !edge.open {
                let _ = poller.deregister(edge.stream.as_raw_fd());
            }
        }
        if progressed {
            last_progress = Instant::now();
        } else if all_sent && last_progress.elapsed() > Duration::from_secs(10) {
            // 10 s of silence after everything was sent: give up
            // rather than hang the benchmark.
            break;
        }
        if edges.iter().all(|e| !e.open) {
            break;
        }
    }
    Ok(ClientResult {
        outcomes,
        latencies,
        per_conn: edges.iter().map(|e| e.decided).collect(),
    })
}

/// Replays every client's stream, client by client, through a serial
/// broker on an identical topology and diffs each flow's decision.
///
/// For a federation run the caller passes the **union** hop count
/// (`--hops x --domains`): a chain of identical per-domain segments is
/// equivalent to one flat broker over the concatenated path, so the
/// same serial replay verifies cross-domain admission flow-for-flow.
fn verify_against_serial(
    pods: usize,
    hops: usize,
    clients: u64,
    requests: usize,
    results: &[ClientResult],
) -> bool {
    let (topo, routes) = pod_topology(pods, hops);
    let mut broker = Broker::new(topo, BrokerConfig::default());
    for route in &routes {
        broker.register_route(route);
    }
    let mut mismatches = 0u64;
    for (c, result) in results.iter().enumerate() {
        for (k, req) in requests_for(c as u64, clients, pods, requests)
            .iter()
            .enumerate()
        {
            let expected = match broker.request(Time::ZERO, req) {
                Ok(res) => Outcome::Admit {
                    rate_bps: res.rate.as_bps(),
                    delay_ns: res.delay.as_nanos(),
                },
                Err(cause) => Outcome::Deny(cause),
            };
            match result.outcomes.get(&(k as u64)) {
                Some(got) if *got == expected => {}
                got => {
                    mismatches += 1;
                    if mismatches <= 5 {
                        eprintln!(
                            "verify mismatch: client {c} request {k} ({:?}): daemon {:?}, serial {:?}",
                            req.flow, got, expected
                        );
                    }
                }
            }
        }
    }
    if mismatches > 0 {
        eprintln!("verify FAILED: {mismatches} decisions differ from the serial broker");
        false
    } else {
        println!(
            "verify OK: all {} decisions match the serial broker flow-for-flow",
            clients as usize * requests
        );
        true
    }
}

fn pod_topology(pods: usize, hops: usize) -> (Topology, Vec<Vec<netsim::topology::LinkId>>) {
    Topology::pod_chains(
        pods,
        hops,
        Rate::from_bps(1_500_000),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    )
}

// ---------------------------------------------------------------------------
// --failover: the measured kill-the-primary experiment (see module docs)
// ---------------------------------------------------------------------------

/// The `bb-server` binary the failover phases spawn. The kill run needs
/// a real process (SIGKILL has no in-process stand-in), so the daemon
/// binary must sit next to this one — which `cargo build --release
/// --bins` guarantees — or be named with `--server-bin`.
fn server_bin() -> std::path::PathBuf {
    let explicit: String = arg("--server-bin", String::new());
    if !explicit.is_empty() {
        return explicit.into();
    }
    std::env::current_exe()
        .expect("resolve current executable")
        .parent()
        .expect("executable has a directory")
        .join("bb-server")
}

type ServerHandle = (
    std::process::Child,
    std::process::ChildStdin,
    std::io::BufReader<std::process::ChildStdout>,
);

fn spawn_server(args: &[String]) -> ServerHandle {
    let bin = server_bin();
    let mut child = std::process::Command::new(&bin)
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            panic!(
                "spawn {} failed ({e}); build bb-server alongside bb-loadgen or pass --server-bin",
                bin.display()
            )
        });
    let stdin = child.stdin.take().expect("piped stdin");
    let reader = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
    (child, stdin, reader)
}

/// Reads stdout lines until one contains `marker`; panics if the daemon
/// exits first. Startup-order dependent: callers await the banners in
/// the order `bb-server` prints them.
fn await_line(reader: &mut impl BufRead, what: &str, marker: &str) -> String {
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read bb-server stdout");
        assert!(n > 0, "bb-server exited before printing {what}");
        if line.contains(marker) {
            return line;
        }
    }
}

/// The whitespace-delimited socket address following `marker`.
fn addr_after(line: &str, marker: &str) -> SocketAddr {
    line.split(marker)
        .nth(1)
        .and_then(|rest| rest.split(|c: char| c.is_whitespace() || c == '/').next())
        .and_then(|tok| tok.parse().ok())
        .unwrap_or_else(|| panic!("no address after {marker:?} in {line:?}"))
}

/// Keeps the child's stdout pipe drained so the final shutdown report
/// (printed on `quit`) can never block the daemon.
fn drain_stdout(reader: std::io::BufReader<std::process::ChildStdout>) {
    std::thread::spawn(move || {
        let mut sink = reader;
        let mut buf = [0u8; 4096];
        while matches!(sink.read(&mut buf), Ok(n) if n > 0) {}
    });
}

fn graceful_quit(mut child: std::process::Child, mut stdin: std::process::ChildStdin, what: &str) {
    let _ = stdin.write_all(b"quit\n");
    drop(stdin);
    let status = child
        .wait()
        .unwrap_or_else(|e| panic!("wait for {what}: {e}"));
    assert!(status.success(), "{what} exited with {status}");
}

fn wait_for_attach(stats: &SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(snap) = fetch_stats(stats) {
            if snap.metrics.repl.attached == 1 {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for the standby to attach to the primary"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Drives one classic paced load phase and returns
/// `(decisions, admitted, elapsed_s)`.
fn drive_load(
    addr: &str,
    pods: usize,
    clients: usize,
    requests: usize,
    rate_hz: f64,
    seed: u64,
) -> (u64, u64, f64) {
    let ready = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients as u64)
        .map(|c| {
            let addr = addr.to_string();
            let reqs = requests_for(c, clients as u64, pods, requests);
            let ready = Arc::clone(&ready);
            std::thread::Builder::new()
                .name(format!("failover-load-{c}"))
                .spawn(move || run_client(addr, c, reqs, rate_hz, seed, ready))
                .expect("spawn load client")
        })
        .collect();
    ready.wait();
    let t0 = Instant::now();
    let results: Vec<ClientResult> = handles
        .into_iter()
        .map(|h| h.join().expect("load client panicked").expect("client I/O"))
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();
    let decisions: u64 = results.iter().map(|r| r.outcomes.len() as u64).sum();
    let admitted = results
        .iter()
        .flat_map(|r| r.outcomes.values())
        .filter(|o| matches!(o, Outcome::Admit { .. }))
        .count() as u64;
    (decisions, admitted, elapsed)
}

/// State the kill run's threads coordinate through: the killer stamps
/// `kill_at` before the SIGKILL, the standby's stdout watcher publishes
/// the promoted address, and every client counts its answered requests
/// toward the kill trigger.
struct FailoverShared {
    promoted: Mutex<Option<SocketAddr>>,
    promoted_cv: Condvar,
    kill_at: Mutex<Option<Instant>>,
    answered: AtomicU64,
}

impl FailoverShared {
    /// Blocks until the watcher publishes the promoted address.
    fn await_promoted(&self) -> SocketAddr {
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut guard = self.promoted.lock().expect("promoted lock");
        loop {
            if let Some(addr) = *guard {
                return addr;
            }
            let left = deadline
                .checked_duration_since(Instant::now())
                .expect("timed out waiting for the standby to announce promotion");
            guard = self
                .promoted_cv
                .wait_timeout(guard, left)
                .expect("promoted lock")
                .0;
        }
    }
}

struct FailoverClientResult {
    outcomes: HashMap<u64, Outcome>,
    /// Request indices the **primary** acknowledged admitting before it
    /// was killed — the set the zero-loss probe re-REQs.
    admitted_primary: Vec<u64>,
    /// Flows admitted fresh by the promoted standby (never answered by
    /// the primary).
    admitted_standby: u64,
    /// Re-sent requests the standby refused as duplicates: the primary
    /// admitted and replicated them but was killed before the DEC
    /// reached this client. Over-delivery, never loss.
    ghost_duplicates: u64,
    /// Kill instant → first decision from the promoted standby, ms.
    failover_ms: Option<f64>,
}

/// One client of the kill run: paces the schedule at the primary,
/// survives its death, re-sends everything unanswered on the promoted
/// standby, and reports how long the failover gap was.
fn run_failover_client(
    primary: String,
    c: u64,
    reqs: Vec<FlowRequest>,
    rate_hz: f64,
    seed: u64,
    ready: Arc<Barrier>,
    shared: Arc<FailoverShared>,
) -> FailoverClientResult {
    let n = reqs.len();
    let stream = TcpStream::connect(&primary).expect("connect to primary");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");
    let mut wstream = stream.try_clone().expect("clone stream");
    ready.wait();

    // Paced open-loop sender, tolerant of the socket dying mid-schedule:
    // a failed write means the kill landed, and whatever was not sent
    // joins the unanswered set the reconnect path re-sends.
    let send_reqs = reqs.clone();
    let sender = std::thread::Builder::new()
        .name(format!("failover-send-{c}"))
        .spawn(move || {
            let mut rng = SmallRng::seed_from_u64(seed ^ (c.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let start = Instant::now();
            let mut next_at = 0.0f64;
            for req in &send_reqs {
                next_at += -rng.gen_range(f64::MIN_POSITIVE..1.0).ln() / rate_hz;
                let due = start + Duration::from_secs_f64(next_at);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                if wstream.write_all(&cops::encode_request(req)).is_err() {
                    return;
                }
            }
        })
        .expect("spawn failover sender");

    let mut outcomes: HashMap<u64, Outcome> = HashMap::new();
    let decode_one = |wire| -> (u64, Outcome) {
        let mut buf = wire;
        let frame = cops::decode_frame(&mut buf).expect("server sent valid COPS");
        match cops::decode_decision(&frame).expect("server sent a DEC") {
            Decision::Install(res) => (
                res.flow.0 & 0xFFFF_FFFF,
                Outcome::Admit {
                    rate_bps: res.rate.as_bps(),
                    delay_ns: res.delay.as_nanos(),
                },
            ),
            Decision::Reject { flow, cause } => (flow.0 & 0xFFFF_FFFF, Outcome::Deny(cause)),
            Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow DEC for {flow}"),
        }
    };

    // Phase one: read the primary until it answers everything or dies.
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 4096];
    let mut rstream = stream;
    let mut primary_died = false;
    'primary: while outcomes.len() < n {
        while let Some(wire) = reader.next_frame().expect("primary broke framing") {
            let (k, outcome) = decode_one(wire);
            if outcomes.insert(k, outcome).is_none() {
                shared.answered.fetch_add(1, Ordering::Relaxed);
            }
        }
        if outcomes.len() >= n {
            break 'primary;
        }
        match rstream.read(&mut chunk) {
            Ok(0) => {
                primary_died = true;
                break 'primary;
            }
            Ok(got) => reader.extend(&chunk[..got]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                // SIGKILL surfaces as RST once the kernel tears the
                // socket down; either way the primary is gone.
                primary_died = true;
                break 'primary;
            }
        }
    }
    sender.join().expect("failover sender panicked");
    let admitted_primary: Vec<u64> = outcomes
        .iter()
        .filter(|(_, o)| matches!(o, Outcome::Admit { .. }))
        .map(|(k, _)| *k)
        .collect();
    if !primary_died {
        return FailoverClientResult {
            outcomes,
            admitted_primary,
            admitted_standby: 0,
            ghost_duplicates: 0,
            failover_ms: None,
        };
    }

    // Phase two: redirect to the promoted standby and re-send every
    // unanswered request, unpaced — the failover gap is what is being
    // measured now, not the offered schedule.
    let promoted = shared.await_promoted();
    let standby = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(promoted) {
                Ok(s) => break s,
                Err(_) => {
                    assert!(
                        Instant::now() < deadline,
                        "timed out connecting to the promoted standby at {promoted}"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    };
    standby.set_nodelay(true).expect("nodelay");
    standby
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut wstandby = standby.try_clone().expect("clone stream");
    let resend: Vec<_> = (0..n as u64)
        .filter(|k| !outcomes.contains_key(k))
        .map(|k| cops::encode_request(&reqs[k as usize]))
        .collect();
    let resender = std::thread::spawn(move || {
        for frame in &resend {
            if wstandby.write_all(frame).is_err() {
                return;
            }
        }
    });

    let mut first_dec: Option<Instant> = None;
    let mut admitted_standby = 0u64;
    let mut ghost_duplicates = 0u64;
    let mut reader = FrameReader::new();
    let mut rstandby = standby;
    while outcomes.len() < n {
        while let Some(wire) = reader.next_frame().expect("standby broke framing") {
            let (k, outcome) = decode_one(wire);
            first_dec.get_or_insert_with(Instant::now);
            match outcome {
                Outcome::Admit { .. } => admitted_standby += 1,
                Outcome::Deny(Reject::DuplicateFlow) => ghost_duplicates += 1,
                Outcome::Deny(_) => {}
            }
            outcomes.insert(k, outcome);
        }
        if outcomes.len() >= n {
            break;
        }
        match rstandby.read(&mut chunk) {
            Ok(0) => panic!(
                "promoted standby closed with {} of {n} requests unanswered",
                n - outcomes.len()
            ),
            Ok(got) => reader.extend(&chunk[..got]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("promoted standby went silent mid-drain")
            }
            Err(e) => panic!("read from the promoted standby: {e}"),
        }
    }
    resender.join().expect("resender panicked");
    let kill_at = shared.kill_at.lock().expect("kill_at lock");
    let failover_ms = first_dec
        .zip(*kill_at)
        .map(|(t, k)| t.saturating_duration_since(k).as_secs_f64() * 1e3);
    FailoverClientResult {
        outcomes,
        admitted_primary,
        admitted_standby,
        ghost_duplicates,
        failover_ms,
    }
}

/// The checked-in `BENCH_failover.json` row. Self-contained: the run
/// measures its own durable baseline, so `bench_gate --failover` needs
/// no second report.
#[derive(serde::Serialize)]
struct FailoverReport {
    pods: usize,
    hops: usize,
    clients: usize,
    requests_per_client: usize,
    offered_rate_per_client_hz: f64,
    seed: u64,
    /// Durable single-daemon throughput (decisions/s), same workload.
    durable_baseline_rps: f64,
    /// Throughput with a warm standby attached and every DEC gated on
    /// its ack (decisions/s).
    replicated_rps: f64,
    /// `replicated_rps / durable_baseline_rps` — the replication tax.
    throughput_ratio: f64,
    decisions_baseline: u64,
    decisions_replicated: u64,
    /// Decisions delivered across the kill run (primary + standby);
    /// equals `clients x requests_per_client` when no request was lost.
    decisions_failover: u64,
    /// Flows the primary acknowledged admitting before the SIGKILL.
    admitted_by_primary: u64,
    /// Flows admitted fresh by the promoted standby.
    admitted_by_standby: u64,
    /// Re-sent requests refused as duplicates: admitted and replicated
    /// by the primary, DEC lost in the kill. Over-delivery, not loss.
    ghost_duplicates: u64,
    /// Acknowledged flows missing from the promoted standby — the
    /// number that must be zero.
    lost_admitted_flows: u64,
    /// Kill instant → first standby decision, per reconnected client.
    failover_ms_per_client: Vec<f64>,
    failover_p50_ms: f64,
    failover_p99_ms: f64,
}

fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The whole `--failover` experiment: baseline, replicated steady
/// state, then the kill run and its zero-loss probe.
fn run_failover() {
    let pods: usize = arg("--pods", 16);
    let hops: usize = arg("--hops", 3);
    let clients: usize = arg("--clients", 4);
    let requests: usize = arg("--requests", 400);
    let rate_hz: f64 = arg("--rate", 2_000.0);
    let seed: u64 = arg("--seed", 1);
    let out: String = arg("--out", "BENCH_failover.json".to_string());
    assert!(clients >= 1 && pods >= clients, "need a pod per client");
    let scratch = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("bb-failover-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let common_args = |stats: &str, extra: &[String]| -> Vec<String> {
        let mut v: Vec<String> = [
            "--addr",
            "127.0.0.1:0",
            "--stats-addr",
            stats,
            "--pods",
            &pods.to_string(),
            "--hops",
            &hops.to_string(),
            "--workers",
            &arg("--workers", 4usize).to_string(),
            "--queue-depth",
            &arg("--queue-depth", 4_096usize).to_string(),
            "--io-threads",
            &arg("--io-threads", 2usize).to_string(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        v.extend_from_slice(extra);
        v
    };
    let durable_args = |dir: &std::path::Path| -> Vec<String> {
        vec![
            "--data-dir".into(),
            dir.display().to_string(),
            "--wal-flush-ms".into(),
            arg("--wal-flush-ms", 1u64).to_string(),
        ]
    };

    // Phase 1: the durable baseline the replication tax is measured
    // against.
    println!("failover phase 1/3: durable baseline ({clients} clients x {requests} @ {rate_hz}/s)");
    let base_dir = scratch("baseline");
    let (child, stdin, mut reader) = spawn_server(&common_args("", &durable_args(&base_dir)));
    let banner = await_line(
        &mut reader,
        "the listening banner",
        "bb-server listening on ",
    );
    let base_addr = addr_after(&banner, "listening on ");
    drain_stdout(reader);
    let (decisions_baseline, _, elapsed) = drive_load(
        &base_addr.to_string(),
        pods,
        clients,
        requests,
        rate_hz,
        seed,
    );
    let durable_baseline_rps = decisions_baseline as f64 / elapsed;
    graceful_quit(child, stdin, "baseline daemon");
    let _ = std::fs::remove_dir_all(&base_dir);
    println!("  baseline: {decisions_baseline} decisions -> {durable_baseline_rps:.0}/s");

    // Phase 2: same workload with a warm standby attached — every DEC
    // now waits for the standby's ack, so this measures the gate's tax.
    println!("failover phase 2/3: replicated steady state (warm standby attached)");
    let repl_dir = scratch("replicated");
    let (p_child, p_stdin, mut p_reader) =
        spawn_server(&common_args("127.0.0.1:0", &durable_args(&repl_dir)));
    let banner = await_line(
        &mut p_reader,
        "the listening banner",
        "bb-server listening on ",
    );
    let p_addr = addr_after(&banner, "listening on ");
    let stats_line = await_line(
        &mut p_reader,
        "the telemetry banner",
        "telemetry on http://",
    );
    let p_stats = addr_after(&stats_line, "http://");
    drain_stdout(p_reader);
    // The standby serves its own read-only stats from the replicated
    // state (an ephemeral endpoint, so the two daemons never collide).
    let (s_child, s_stdin, mut s_reader) = spawn_server(&common_args(
        "127.0.0.1:0",
        &["--replica-of".into(), p_addr.to_string()],
    ));
    await_line(&mut s_reader, "the standby banner", "bb-server standby of ");
    drain_stdout(s_reader);
    wait_for_attach(&p_stats);
    let (decisions_replicated, _, elapsed) =
        drive_load(&p_addr.to_string(), pods, clients, requests, rate_hz, seed);
    let replicated_rps = decisions_replicated as f64 / elapsed;
    graceful_quit(s_child, s_stdin, "steady-state standby");
    graceful_quit(p_child, p_stdin, "steady-state primary");
    let _ = std::fs::remove_dir_all(&repl_dir);
    let throughput_ratio = replicated_rps / durable_baseline_rps;
    println!(
        "  replicated: {decisions_replicated} decisions -> {replicated_rps:.0}/s \
         ({:.0}% of baseline)",
        throughput_ratio * 100.0
    );

    // Phase 3: the kill run. SIGKILL the primary once half the total
    // decisions are acknowledged, let the standby auto-promote, and
    // finish the load on it.
    println!("failover phase 3/3: SIGKILL the primary mid-load");
    let kill_dir = scratch("kill");
    let (p_child, p_stdin, mut p_reader) =
        spawn_server(&common_args("127.0.0.1:0", &durable_args(&kill_dir)));
    let banner = await_line(
        &mut p_reader,
        "the listening banner",
        "bb-server listening on ",
    );
    let p_addr = addr_after(&banner, "listening on ");
    let stats_line = await_line(
        &mut p_reader,
        "the telemetry banner",
        "telemetry on http://",
    );
    let p_stats = addr_after(&stats_line, "http://");
    drain_stdout(p_reader);
    let (s_child, s_stdin, mut s_reader) = spawn_server(&common_args(
        "127.0.0.1:0",
        &["--replica-of".into(), p_addr.to_string()],
    ));
    await_line(&mut s_reader, "the standby banner", "bb-server standby of ");
    wait_for_attach(&p_stats);

    let shared = Arc::new(FailoverShared {
        promoted: Mutex::new(None),
        promoted_cv: Condvar::new(),
        kill_at: Mutex::new(None),
        answered: AtomicU64::new(0),
    });
    // The standby's stdout watcher: publishes the promoted address the
    // moment the daemon announces it, then keeps the pipe drained.
    let watcher = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                if s_reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                if let Some(rest) = line.strip_prefix("bb-server promoted: listening on ") {
                    let addr: SocketAddr = rest.trim().parse().expect("promoted address");
                    *shared.promoted.lock().expect("promoted lock") = Some(addr);
                    shared.promoted_cv.notify_all();
                }
            }
        })
    };
    // The killer: SIGKILL — not a graceful quit — once half the run is
    // acknowledged. The primary's stdin handle rides along so the pipe
    // cannot close early (stdin EOF is the *graceful* shutdown path).
    let killer = {
        let shared = Arc::clone(&shared);
        let half = (clients * requests) as u64 / 2;
        let mut victim = p_child;
        let victim_stdin = p_stdin;
        std::thread::spawn(move || {
            while shared.answered.load(Ordering::Relaxed) < half {
                std::thread::sleep(Duration::from_millis(1));
            }
            *shared.kill_at.lock().expect("kill_at lock") = Some(Instant::now());
            victim.kill().expect("SIGKILL the primary");
            let _ = victim.wait();
            drop(victim_stdin);
        })
    };

    let ready = Arc::new(Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients as u64)
        .map(|c| {
            let addr = p_addr.to_string();
            let reqs = requests_for(c, clients as u64, pods, requests);
            let ready = Arc::clone(&ready);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("failover-client-{c}"))
                .spawn(move || run_failover_client(addr, c, reqs, rate_hz, seed, ready, shared))
                .expect("spawn failover client")
        })
        .collect();
    ready.wait();
    let results: Vec<FailoverClientResult> = handles
        .into_iter()
        .map(|h| h.join().expect("failover client panicked"))
        .collect();
    killer.join().expect("killer panicked");

    // The zero-loss probe: every flow the primary *acknowledged*
    // admitting must be resident on the promoted standby, proven by the
    // duplicate refusal. Anything else is a lost admitted flow.
    let promoted = shared.await_promoted();
    let mut probe = CopsClient::connect(&promoted.to_string()).expect("connect the probe");
    probe
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("probe timeout");
    let mut lost_admitted_flows = 0u64;
    for (c, result) in results.iter().enumerate() {
        let reqs = requests_for(c as u64, clients as u64, pods, requests);
        for &k in &result.admitted_primary {
            match probe.request(&reqs[k as usize]).expect("probe round trip") {
                Decision::Reject {
                    cause: Reject::DuplicateFlow,
                    ..
                } => {}
                other => {
                    lost_admitted_flows += 1;
                    eprintln!(
                        "LOST: flow {:#x} was acknowledged by the primary but is not resident \
                         on the promoted standby (probe answered {other:?})",
                        (c as u64) << 32 | k
                    );
                }
            }
        }
    }
    drop(probe);
    graceful_quit(s_child, s_stdin, "promoted standby");
    watcher.join().expect("watcher panicked");
    let _ = std::fs::remove_dir_all(&kill_dir);

    let decisions_failover: u64 = results.iter().map(|r| r.outcomes.len() as u64).sum();
    let admitted_by_primary: u64 = results
        .iter()
        .map(|r| r.admitted_primary.len() as u64)
        .sum();
    let admitted_by_standby: u64 = results.iter().map(|r| r.admitted_standby).sum();
    let ghost_duplicates: u64 = results.iter().map(|r| r.ghost_duplicates).sum();
    let mut failover_ms_per_client: Vec<f64> =
        results.iter().filter_map(|r| r.failover_ms).collect();
    failover_ms_per_client.sort_by(|a, b| a.partial_cmp(b).expect("finite failover times"));
    assert!(
        !failover_ms_per_client.is_empty(),
        "no client crossed the failover: the kill landed after the load finished \
         (raise --requests or lower --rate)"
    );

    let report = FailoverReport {
        pods,
        hops,
        clients,
        requests_per_client: requests,
        offered_rate_per_client_hz: rate_hz,
        seed,
        durable_baseline_rps,
        replicated_rps,
        throughput_ratio,
        decisions_baseline,
        decisions_replicated,
        decisions_failover,
        admitted_by_primary,
        admitted_by_standby,
        ghost_duplicates,
        lost_admitted_flows,
        failover_p50_ms: percentile_ms(&failover_ms_per_client, 0.50),
        failover_p99_ms: percentile_ms(&failover_ms_per_client, 0.99),
        failover_ms_per_client,
    };
    println!(
        "  kill run: {} decisions ({} by the primary's acknowledged admits, {} standby admits, \
         {} ghost duplicates); failover p50 {:.1} ms, p99 {:.1} ms",
        report.decisions_failover,
        report.admitted_by_primary,
        report.admitted_by_standby,
        report.ghost_duplicates,
        report.failover_p50_ms,
        report.failover_p99_ms
    );
    println!(
        "  zero-loss probe: {} acknowledged flows checked, {} lost",
        report.admitted_by_primary, report.lost_admitted_flows
    );
    if !out.is_empty() {
        std::fs::write(&out, serde::json::to_string_pretty(&report)).expect("write failover JSON");
        println!("wrote {out}");
    }
    let complete = report.decisions_failover == (clients * requests) as u64;
    if !complete {
        eprintln!(
            "failover run incomplete: {} of {} requests answered",
            report.decisions_failover,
            clients * requests
        );
    }
    if report.lost_admitted_flows > 0 || !complete {
        std::process::exit(1);
    }
}

/// Ramp phase row: how fast the daemon absorbed the resident
/// population and what each resident flow costs in memory.
#[derive(serde::Serialize)]
struct ScenarioRampReport {
    /// Flows admitted and *held* by the ramp (the resident population
    /// the replay runs on top of).
    resident_peak: u64,
    /// Ramp requests refused — a correctly sized spec admits them all.
    ramp_rejected: u64,
    elapsed_s: f64,
    /// Ramp decisions (admits + rejects) per second of ramp wall time.
    sustained_decisions_per_s: f64,
    /// Daemon RSS just before the ramp, bytes.
    rss_before_bytes: u64,
    /// Daemon RSS with the full resident population held, bytes.
    rss_after_bytes: u64,
    /// RSS growth per resident flow — the per-flow state envelope.
    bytes_per_resident_flow: f64,
}

/// Replay phase row: what the deterministic event trace did.
#[derive(serde::Serialize)]
struct ScenarioReplayReport {
    /// Total trace events replayed.
    events: u64,
    arrivals: u64,
    /// Arrivals that joined their AP's delay-service class (churn).
    class_arrivals: u64,
    /// Arrivals belonging to flash-crowd bursts.
    flash_arrivals: u64,
    admitted: u64,
    rejected: u64,
    /// Arrivals sent down their AP's backup uplink because the primary
    /// was down at the time.
    rerouted: u64,
    departures: u64,
    link_downs: u64,
    link_ups: u64,
    elapsed_s: f64,
    /// §4.2 contingency totals over the whole run (ramp + replay),
    /// summed across shards — the churn exists to drive these.
    contingency_grants: u64,
    contingency_expiries: u64,
    contingency_resets: u64,
}

/// Probe phase row: sampled flow-for-flow verification.
#[derive(serde::Serialize)]
struct ScenarioProbeReport {
    /// Ramp flows re-REQed; each must refuse its duplicate (resident).
    probed_resident: u64,
    /// Replay flows admitted then departed, re-REQed; none may refuse
    /// as a duplicate (their state must be gone).
    probed_departed: u64,
    /// Both probes passed on every sampled flow.
    verified_sampled: bool,
}

/// The `--scenario` report (`BENCH_scenario.json`).
#[derive(serde::Serialize)]
struct ScenarioReport {
    /// Spec name (human-readable; config identity is the fields below).
    scenario: String,
    seed: u64,
    sites: usize,
    aps_per_site: usize,
    clients_per_ap: usize,
    /// Total subscriber clients (= sites × aps_per_site × clients_per_ap).
    clients: usize,
    resident_target: u64,
    /// Replay speed-up: scenario seconds per wall second.
    time_scale: f64,
    workers: usize,
    ramp: ScenarioRampReport,
    replay: ScenarioReplayReport,
    probe: ScenarioProbeReport,
    /// Mirror of `probe.verified_sampled`, hoisted for the gate.
    verified_sampled: bool,
    /// Telemetry polls over the whole run, decimated to ≤ `TIMELINE_CAP`.
    timeline: Vec<TimelinePoint>,
    /// Final stats snapshot (includes the scenario gauges and RSS).
    stats: Option<StatsSnapshot>,
    server: Option<ServerReport>,
}

/// Per-connection in-flight window of the ramp: deep enough to keep
/// the pipe full, bounded so the daemon's queues see open-loop
/// pressure rather than one giant burst.
const RAMP_WINDOW: usize = 1024;

/// Builds the spec's per-flow request against `tree` for `flow`,
/// aimed at `client` on `path`.
fn scenario_request(spec: &ScenarioSpec, flow: u64, path: bb_core::PathId) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: TrafficProfile::new(
            Bits::from_bytes(spec.load.flow_sigma_bytes),
            Rate::from_bps(spec.load.flow_rho_bps),
            Rate::from_bps(spec.load.flow_peak_bps),
            Bits::from_bytes(spec.load.flow_lmax_bytes),
        )
        .expect("validated spec profile"),
        d_req: Nanos::from_millis(spec.load.d_req_ms),
        service: ServiceKind::PerFlow,
        path,
    }
}

/// The `--scenario` run: host the subscriber tree, ramp the resident
/// population, replay the deterministic event trace, probe a sample.
fn run_scenario(spec_path: &str) {
    let text = std::fs::read_to_string(spec_path).unwrap_or_else(|e| {
        eprintln!("cannot read scenario spec {spec_path}: {e}");
        std::process::exit(2);
    });
    let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("bad scenario spec {spec_path}: {e}");
        std::process::exit(2);
    });
    let out: String = arg("--out", "BENCH_scenario.json".to_string());
    let time_scale: f64 = arg("--time-scale", 60.0);
    let ramp_threads: usize = arg("--ramp-threads", 8).max(1);
    let probe_n: u64 = arg("--probe", 1_024).max(1);
    let sample_ms: u64 = arg("--sample-ms", 250);
    // Shards own link-disjoint pods and the tree has one pod per site,
    // so the worker count can never exceed the site count.
    let workers = arg("--workers", 4).clamp(1, spec.tree.sites);

    let tree = Arc::new(SubscriberTree::build(&spec.tree, &spec.churn));
    let config = ServerConfig {
        workers,
        queue_depth: arg("--queue-depth", 4_096),
        io_threads: arg("--io-threads", 2),
        stats_addr: Some("127.0.0.1:0".to_string()),
        broker: BrokerConfig {
            // Bounding termination: grant expiries tick over without
            // edge feedback, so churn exercises the §4.2 timers.
            contingency: ContingencyPolicy::Bounding,
            classes: tree.classes.clone(),
            ..BrokerConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = BbServer::start("127.0.0.1:0", &tree.topo, &tree.routes, &config)
        .expect("start scenario daemon");
    let addr = server.local_addr().to_string();
    let sa = server.stats_addr().expect("scenario daemon serves stats");
    println!(
        "bb-scenario '{}': {} sites x {} APs x {} clients = {} subscribers -> {addr} \
         ({workers} shards); resident target {}",
        spec.name,
        spec.tree.sites,
        spec.tree.aps_per_site,
        spec.tree.clients_per_ap,
        tree.clients(),
        spec.resident_target
    );

    let started = Instant::now();
    let sampling = Arc::new(AtomicBool::new(sample_ms > 0));
    let sampler = {
        let sampling = Arc::clone(&sampling);
        let period = Duration::from_millis(sample_ms.max(1));
        std::thread::Builder::new()
            .name("scenario-sampler".into())
            .spawn(move || -> Vec<TimelinePoint> {
                let mut timeline = Downsampler::new(TIMELINE_CAP);
                while sampling.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if let Ok(snap) = fetch_stats(&sa) {
                        timeline.offer(timeline_point(started.elapsed().as_secs_f64(), &snap));
                    }
                }
                timeline.into_points()
            })
            .expect("spawn scenario sampler")
    };

    // ---- Phase 1: ramp the resident population ----------------------
    server.set_scenario_phase(1);
    let rss_before = fetch_stats(&sa).map_or(0, |s| s.metrics.scenario.rss_bytes);
    let target = spec.resident_target;
    let clients_total = tree.clients() as u64;
    let ramp_admitted = Arc::new(AtomicU64::new(0));
    let ramp_rejected = Arc::new(AtomicU64::new(0));
    let ramp_started = Instant::now();
    let ramp_handles: Vec<_> = (0..ramp_threads as u64)
        .map(|t| {
            let addr = addr.clone();
            let spec = spec.clone();
            let tree = Arc::clone(&tree);
            let admitted = Arc::clone(&ramp_admitted);
            let rejected = Arc::clone(&ramp_rejected);
            std::thread::Builder::new()
                .name(format!("scenario-ramp-{t}"))
                .spawn(move || {
                    let mut client = CopsClient::connect(&addr).expect("connect ramp client");
                    client
                        .set_timeout(Some(Duration::from_secs(60)))
                        .expect("ramp timeout");
                    // Flows f ≡ t (mod threads), a bounded window each.
                    let mut next = t;
                    let mut in_flight = 0usize;
                    while next < target || in_flight > 0 {
                        if next < target && in_flight < RAMP_WINDOW {
                            let client_idx = (next % clients_total) as usize;
                            let req = scenario_request(&spec, next, tree.primary_path(client_idx));
                            client.send_request(&req).expect("ramp send");
                            in_flight += 1;
                            next += ramp_threads as u64;
                        } else {
                            match client.recv_decision().expect("ramp recv") {
                                Decision::Install(_) => {
                                    admitted.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            in_flight -= 1;
                        }
                    }
                })
                .expect("spawn ramp thread")
        })
        .collect();
    while ramp_handles.iter().any(|h| !h.is_finished()) {
        server.set_scenario_resident(ramp_admitted.load(Ordering::Relaxed));
        std::thread::sleep(Duration::from_millis(20));
    }
    for h in ramp_handles {
        h.join().expect("ramp thread panicked");
    }
    let ramp_elapsed = ramp_started.elapsed().as_secs_f64();
    let resident_peak = ramp_admitted.load(Ordering::Relaxed);
    server.set_scenario_resident(resident_peak);
    let rss_after = fetch_stats(&sa).map_or(0, |s| s.metrics.scenario.rss_bytes);
    let ramp = ScenarioRampReport {
        resident_peak,
        ramp_rejected: ramp_rejected.load(Ordering::Relaxed),
        elapsed_s: ramp_elapsed,
        sustained_decisions_per_s: if target > 0 {
            target as f64 / ramp_elapsed
        } else {
            0.0
        },
        rss_before_bytes: rss_before,
        rss_after_bytes: rss_after,
        bytes_per_resident_flow: if resident_peak > 0 {
            rss_after.saturating_sub(rss_before) as f64 / resident_peak as f64
        } else {
            0.0
        },
    };
    println!(
        "ramp: {} resident flows in {:.2} s -> {:.0} decisions/s sustained; RSS {:.1} MiB -> \
         {:.1} MiB ({:.0} B/flow)",
        ramp.resident_peak,
        ramp.elapsed_s,
        ramp.sustained_decisions_per_s,
        ramp.rss_before_bytes as f64 / (1024.0 * 1024.0),
        ramp.rss_after_bytes as f64 / (1024.0 * 1024.0),
        ramp.bytes_per_resident_flow
    );

    // ---- Phase 2: replay the event trace ----------------------------
    server.set_scenario_phase(2);
    let trace = ScenarioTrace::generate(&spec);
    let counts = trace.counts();
    let mut driver = CopsClient::connect(&addr).expect("connect replay driver");
    driver
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("driver timeout");
    // Flow → was-it-a-class-join, for every *admitted* trace flow: a
    // departure DRQs only admitted flows (an unknown DRQ would draw an
    // UnknownFlow reply the serial read loop must not see).
    let mut live: HashMap<u64, bool> = HashMap::new();
    // Per-flow flows that arrived, admitted, and departed — the probe
    // samples these to prove teardown really erased them.
    let mut departed: Vec<(u64, u32)> = Vec::new();
    let mut downed_aps: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let (mut adm, mut rej, mut rerouted) = (0u64, 0u64, 0u64);
    let replay_started = Instant::now();
    for e in trace.events() {
        let due = Duration::from_nanos((e.at_ns as f64 / time_scale) as u64);
        if let Some(wait) = due.checked_sub(replay_started.elapsed()) {
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
        match e.kind {
            EventKind::Arrival {
                flow,
                client,
                class,
                ..
            } => {
                let c = client as usize;
                let ap = tree.ap_of_client(c);
                let path = if downed_aps.contains(&ap) {
                    rerouted += 1;
                    tree.backup_path(c)
                } else {
                    tree.primary_path(c)
                };
                let mut req = scenario_request(&spec, flow, path);
                if class {
                    req.service = ServiceKind::Class(ap as u32);
                    req.d_req = Nanos::from_millis(spec.churn.class_d_req_ms);
                }
                driver.send_request(&req).expect("replay send");
                match driver.recv_decision().expect("replay recv") {
                    Decision::Install(_) => {
                        adm += 1;
                        live.insert(flow, class);
                    }
                    _ => rej += 1,
                }
                server.set_scenario_resident(resident_peak + live.len() as u64);
            }
            EventKind::Departure { flow, client, .. } => {
                if let Some(class) = live.remove(&flow) {
                    driver.send_delete(FlowId(flow)).expect("replay DRQ");
                    if class {
                        // A class-member delete answers with the
                        // macroflow's revised reservation; drain it so
                        // the stream stays in lock-step.
                        driver.recv_decision().expect("macroflow DEC");
                    } else {
                        departed.push((flow, client));
                    }
                    server.set_scenario_resident(resident_peak + live.len() as u64);
                }
            }
            EventKind::LinkDown { site, ap } => {
                let g = tree.ap_index(site, ap);
                downed_aps.insert(g);
                server.set_link_state(tree.ap_primary_uplink[g], false);
            }
            EventKind::LinkUp { site, ap } => {
                let g = tree.ap_index(site, ap);
                downed_aps.remove(&g);
                server.set_link_state(tree.ap_primary_uplink[g], true);
            }
        }
    }
    let replay_elapsed = replay_started.elapsed().as_secs_f64();
    assert!(
        live.is_empty(),
        "the trace drains fully, yet {} replay flows are still live",
        live.len()
    );
    let cont = fetch_stats(&sa).ok();
    let sum_shards = |f: &dyn Fn(&bb_telemetry::ShardSnapshot) -> u64| -> u64 {
        cont.as_ref()
            .map_or(0, |s| s.metrics.shards.iter().map(f).sum())
    };
    let replay = ScenarioReplayReport {
        events: trace.events().len() as u64,
        arrivals: counts.arrivals,
        class_arrivals: counts.class_arrivals,
        flash_arrivals: counts.flash_arrivals,
        admitted: adm,
        rejected: rej,
        rerouted,
        departures: counts.departures,
        link_downs: counts.link_downs,
        link_ups: counts.link_ups,
        elapsed_s: replay_elapsed,
        contingency_grants: sum_shards(&|s| s.grants),
        contingency_expiries: sum_shards(&|s| s.grant_expiries),
        contingency_resets: sum_shards(&|s| s.grant_resets),
    };
    println!(
        "replay: {} events in {:.2} s ({} arrivals: {} class, {} flash; {} admitted, \
         {} rejected, {} rerouted; {} link downs); contingency {} grants / {} expiries / \
         {} resets",
        replay.events,
        replay.elapsed_s,
        replay.arrivals,
        replay.class_arrivals,
        replay.flash_arrivals,
        replay.admitted,
        replay.rejected,
        replay.rerouted,
        replay.link_downs,
        replay.contingency_grants,
        replay.contingency_expiries,
        replay.contingency_resets
    );

    // ---- Phase 3: sampled flow-for-flow verification ----------------
    server.set_scenario_phase(3);
    let mut probe = CopsClient::connect(&addr).expect("connect probe");
    probe
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("probe timeout");
    let mut verified = true;
    // Resident sample: every k-th ramp flow must refuse its duplicate.
    let mut probed_resident = 0u64;
    if target > 0 {
        let step = (target / probe_n.min(target)).max(1);
        let mut f = 0u64;
        while f < target {
            let client_idx = (f % clients_total) as usize;
            let req = scenario_request(&spec, f, tree.primary_path(client_idx));
            match probe.request(&req).expect("resident probe") {
                Decision::Reject {
                    cause: Reject::DuplicateFlow,
                    ..
                } => {}
                other => {
                    verified = false;
                    eprintln!("LOST: resident flow {f} answered {other:?}, not DuplicateFlow");
                }
            }
            probed_resident += 1;
            f += step;
        }
    }
    // Departed sample: a drained replay flow must NOT be resident. A
    // fresh Install proves it (and is torn down again to restore the
    // population); a capacity refusal proves it too.
    let mut probed_departed = 0u64;
    if !departed.is_empty() {
        let step = (departed.len() as u64 / probe_n).max(1) as usize;
        for &(flow, client) in departed.iter().step_by(step) {
            let req = scenario_request(&spec, flow, tree.primary_path(client as usize));
            match probe.request(&req).expect("departed probe") {
                Decision::Reject {
                    cause: Reject::DuplicateFlow,
                    ..
                } => {
                    verified = false;
                    eprintln!("GHOST: departed flow {flow} is still resident");
                }
                Decision::Install(_) => {
                    // Re-admitted: erase it again (per-flow DRQs draw
                    // no reply).
                    probe.send_delete(FlowId(flow)).expect("probe DRQ");
                }
                _ => {}
            }
            probed_departed += 1;
        }
    }
    let probe_row = ScenarioProbeReport {
        probed_resident,
        probed_departed,
        verified_sampled: verified,
    };
    println!(
        "probe: {} resident + {} departed flows sampled -> {}",
        probe_row.probed_resident,
        probe_row.probed_departed,
        if verified { "verified" } else { "FAILED" }
    );

    drop(driver);
    drop(probe);
    let stats = fetch_stats(&sa).ok();
    sampling.store(false, Ordering::Relaxed);
    let timeline = sampler.join().expect("scenario sampler");
    let server_report = server.shutdown();

    let report = ScenarioReport {
        scenario: spec.name.clone(),
        seed: spec.seed,
        sites: spec.tree.sites,
        aps_per_site: spec.tree.aps_per_site,
        clients_per_ap: spec.tree.clients_per_ap,
        clients: clients_total as usize,
        resident_target: target,
        time_scale,
        workers,
        ramp,
        replay,
        probe: probe_row,
        verified_sampled: verified,
        timeline,
        stats,
        server: Some(server_report),
    };
    if !out.is_empty() {
        std::fs::write(&out, serde::json::to_string_pretty(&report)).expect("write scenario JSON");
        println!("wrote {out}");
    }
    if !verified {
        std::process::exit(1);
    }
}

fn main() {
    if flag("--failover") {
        run_failover();
        return;
    }
    let scenario: String = arg("--scenario", String::new());
    if !scenario.is_empty() {
        run_scenario(&scenario);
        return;
    }
    let pods: usize = arg("--pods", 64);
    let hops: usize = arg("--hops", 5);
    let clients: usize = arg("--clients", 8);
    let requests: usize = arg("--requests", 400);
    let rate_hz: f64 = arg("--rate", 4_000.0);
    let seed: u64 = arg("--seed", 1);
    let connections: usize = arg("--connections", 0);
    let drivers_arg: usize = arg("--drivers", 0);
    let mut verify = flag("--verify");
    let external: String = arg("--addr", String::new());
    let external_stats: String = arg("--stats-addr", String::new());
    let domains: usize = arg("--domains", 1);
    let default_out = if domains > 1 {
        "BENCH_federation.json"
    } else {
        "BENCH_loadgen.json"
    };
    let out: String = arg("--out", default_out.to_string());
    let sample_ms: u64 = arg("--sample-ms", 50);
    let durable = flag("--durable");
    let batched_decide = !flag("--no-batched-decide");
    let data_dir: String = arg("--data-dir", String::new());
    let wal_flush_ms: u64 = arg("--wal-flush-ms", 5);
    let snapshot_every: u64 = arg("--snapshot-every", 10_000);

    assert!(clients >= 1, "need at least one client");
    assert!(domains >= 1, "need at least one domain");
    assert!(
        !(durable && domains > 1),
        "--durable and --domains are incompatible: federated admissions are not journaled \
         (the WAL replays local decisions only; see DESIGN.md §4i)"
    );
    assert!(
        pods >= clients,
        "need at least one pod per client so every client owns a pod"
    );
    assert!(
        connections == 0 || connections >= clients,
        "--connections must be at least --clients so every client thread owns a connection"
    );
    if connections > 0 && verify {
        eprintln!(
            "--verify is unavailable with --connections: replies spread over many sockets no \
             longer pin each pod's request order, so the serial comparison is skipped"
        );
        verify = false;
    }
    // Swarm mode decouples OS threads from workload clients: the same
    // `--clients` seeded streams can be driven by fewer threads
    // (`--drivers`), keeping the generator's scheduling overhead off
    // the measurement on small machines. Classic mode keeps one thread
    // per client — the blocking sender/receiver pair needs it.
    let drivers = if connections > 0 {
        match drivers_arg {
            0 => clients,
            d => d.min(clients),
        }
    } else {
        clients
    };

    // Resolve the durable data directory. The benchmark measures a
    // fresh run, so the directory must start empty: the default (a
    // pid-stamped temp path this process owns) is wiped, a caller-named
    // one must already be empty.
    let durable_opts = durable.then(|| {
        let dir = if data_dir.is_empty() {
            let d = std::env::temp_dir().join(format!("bb-loadgen-durable-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            d
        } else {
            let d = std::path::PathBuf::from(&data_dir);
            let occupied = std::fs::read_dir(&d)
                .map(|mut entries| entries.next().is_some())
                .unwrap_or(false);
            assert!(
                !occupied,
                "--data-dir {} is not empty; bb-loadgen benchmarks a fresh run",
                d.display()
            );
            d
        };
        DurableOptions {
            data_dir: dir,
            wal_flush: Duration::from_millis(wal_flush_ms),
            snapshot_every,
        }
    });
    if durable && !external.is_empty() {
        eprintln!("--durable only applies to the hosted daemon; the external one ignores it");
    }

    // Host the daemon in-process unless pointed at an external one. The
    // full TCP path is exercised either way. With `--domains N` the
    // whole federation chain is hosted: downstream domains first
    // (terminal-most leading, since every broker dials its downstream
    // peer at startup), then the edge domain the clients drive.
    let mut hosted = None;
    let mut peer_hosts: Vec<BbServer> = Vec::new();
    let addr = if external.is_empty() {
        let (topo, routes) = pod_topology(pods, hops);
        let mut next_peer: Option<String> = None;
        for _ in 1..domains {
            let config = ServerConfig {
                workers: arg("--workers", 4),
                queue_depth: arg("--queue-depth", 4_096),
                io_threads: arg("--io-threads", 2),
                batched_decide,
                peer: next_peer.take(),
                ..ServerConfig::default()
            };
            let srv = BbServer::start("127.0.0.1:0", &topo, &routes, &config)
                .expect("start downstream federation domain");
            next_peer = Some(srv.local_addr().to_string());
            peer_hosts.push(srv);
        }
        let config = ServerConfig {
            workers: arg("--workers", 4),
            queue_depth: arg("--queue-depth", 4_096),
            io_threads: arg("--io-threads", 2),
            stats_addr: Some("127.0.0.1:0".to_string()),
            batched_decide,
            durable: durable_opts.clone(),
            peer: next_peer,
            ..ServerConfig::default()
        };
        let server = BbServer::start("127.0.0.1:0", &topo, &routes, &config)
            .expect("start in-process daemon");
        let addr = server.local_addr().to_string();
        hosted = Some(server);
        addr
    } else {
        external
    };
    // The telemetry endpoint to poll: the hosted daemon's, or the one
    // named with --stats-addr for an external daemon.
    let stats_addr: Option<SocketAddr> = hosted
        .as_ref()
        .and_then(BbServer::stats_addr)
        .or_else(|| external_stats.parse().ok());
    if connections > 0 {
        println!(
            "bb-loadgen: {clients} clients x {requests} requests @ {rate_hz}/s each over \
             {connections} persistent connections ({drivers} driver threads) -> {addr} \
             ({pods} pods x {hops} hops)"
        );
    } else {
        println!(
            "bb-loadgen: {clients} clients x {requests} requests @ {rate_hz}/s each -> {addr} \
             ({pods} pods x {hops} hops)"
        );
    }
    if domains > 1 {
        println!(
            "federation: {domains}-domain chain ({} hosted downstream), union path {} hops",
            peer_hosts.len(),
            hops * domains
        );
    }

    let started = Instant::now();
    #[cfg(feature = "count-allocs")]
    let allocs_start = alloc_counter::total();

    // Telemetry sampler: polls the stats endpoint over TCP while the
    // clients run, building the report's time series.
    let sampling = Arc::new(AtomicBool::new(sample_ms > 0 && stats_addr.is_some()));
    let sampler = {
        let sampling = Arc::clone(&sampling);
        let period = Duration::from_millis(sample_ms.max(1));
        std::thread::Builder::new()
            .name("loadgen-sampler".into())
            .spawn(move || -> Vec<TimelinePoint> {
                let mut timeline = Downsampler::new(TIMELINE_CAP);
                let Some(sa) = stats_addr else {
                    return Vec::new();
                };
                while sampling.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if let Ok(snap) = fetch_stats(&sa) {
                        timeline.offer(timeline_point(started.elapsed().as_secs_f64(), &snap));
                    }
                }
                timeline.into_points()
            })
            .expect("spawn sampler thread")
    };

    // Threads rendezvous here once connected, so the measured window
    // starts with every persistent connection already open.
    let ready = Arc::new(Barrier::new(drivers + 1));
    let handles: Vec<_> = if connections > 0 {
        (0..drivers as u64)
            .map(|t| {
                let addr = addr.clone();
                let ready = Arc::clone(&ready);
                // Each driver multiplexes every client stream with
                // c ≡ t (mod drivers); each stream keeps its own even
                // share of the swarm.
                let streams: Vec<(u64, Vec<FlowRequest>, usize)> = (0..clients as u64)
                    .filter(|c| c % drivers as u64 == t)
                    .map(|c| {
                        let conns = connections / clients
                            + usize::from((c as usize) < connections % clients);
                        (c, requests_for(c, clients as u64, pods, requests), conns)
                    })
                    .collect();
                std::thread::Builder::new()
                    .name(format!("loadgen-drv-{t}"))
                    .spawn(move || run_swarm_driver(addr, streams, rate_hz, seed, ready))
                    .expect("spawn driver thread")
            })
            .collect()
    } else {
        (0..clients as u64)
            .map(|c| {
                let addr = addr.clone();
                let reqs = requests_for(c, clients as u64, pods, requests);
                let ready = Arc::clone(&ready);
                std::thread::Builder::new()
                    .name(format!("loadgen-recv-{c}"))
                    .spawn(move || run_client(addr, c, reqs, rate_hz, seed, ready))
                    .expect("spawn client thread")
            })
            .collect()
    };
    ready.wait();
    let load_started = Instant::now();
    let results: Vec<ClientResult> = handles
        .into_iter()
        .map(|h| {
            h.join()
                .expect("client thread panicked")
                .expect("client I/O")
        })
        .collect();
    let elapsed = load_started.elapsed().as_secs_f64();
    #[cfg(feature = "count-allocs")]
    let allocs_total = alloc_counter::total() - allocs_start;

    // Final snapshot after the last decision, then stop the sampler.
    let stats = stats_addr.and_then(|sa| fetch_stats(&sa).ok());
    sampling.store(false, Ordering::Relaxed);
    let timeline = sampler.join().expect("sampler thread");

    let decisions: u64 = results.iter().map(|r| r.outcomes.len() as u64).sum();
    let admitted = results
        .iter()
        .flat_map(|r| r.outcomes.values())
        .filter(|o| matches!(o, Outcome::Admit { .. }))
        .count() as u64;
    let overloaded = results
        .iter()
        .flat_map(|r| r.outcomes.values())
        .filter(|o| matches!(o, Outcome::Deny(Reject::Overloaded)))
        .count() as u64;
    let mut latencies: Vec<u64> = results.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort_unstable();

    let verified = if verify {
        // Federation: the chain of N identical domains must match one
        // flat broker over the concatenated (hops x domains) path.
        let ok = verify_against_serial(pods, hops * domains, clients as u64, requests, &results);
        let clean = overloaded == 0;
        if !clean {
            eprintln!(
                "verify FAILED: {overloaded} requests were shed under overload; rerun with a \
                 deeper --queue-depth or lower --rate for a loss-free comparison"
            );
        }
        Some(ok && clean)
    } else {
        None
    };

    #[cfg(feature = "count-allocs")]
    let allocs_per_decision = (decisions > 0).then(|| allocs_total as f64 / decisions as f64);
    #[cfg(not(feature = "count-allocs"))]
    let allocs_per_decision: Option<f64> = None;

    let server = hosted.map(BbServer::shutdown);
    // Downstream domains shut down after the edge (the edge's outbound
    // peer connection drains first), reported in chain order: the
    // domain the edge dials first, the terminal last.
    let peer_servers: Vec<ServerReport> = peer_hosts
        .into_iter()
        .rev()
        .map(BbServer::shutdown)
        .collect();

    // Zero-residue invariant of the federation protocol: an admission
    // books in every domain, a refusal (or abort) books in none — so
    // at shutdown every domain must hold exactly the flows the edge
    // holds.
    let fed_consistent = (domains > 1 && !peer_servers.is_empty()).then(|| {
        let edge_resident = server.as_ref().map_or(0, |s| s.resident_flows);
        let ok = peer_servers
            .iter()
            .all(|p| p.resident_flows == edge_resident);
        if !ok {
            eprintln!(
                "federation residency FAILED: edge holds {edge_resident} flows, downstream \
                 domains hold {:?} — some abort path leaked a booking",
                peer_servers
                    .iter()
                    .map(|p| p.resident_flows)
                    .collect::<Vec<_>>()
            );
        }
        ok
    });
    let verified = verified.map(|v| v && fed_consistent.unwrap_or(true));

    // Durable restart check: boot a second daemon from the data
    // directory the first one just shut down over, and require the
    // recovered state to match the final report exactly — resident
    // flows and every shard's admission counters.
    let durable_row = durable_opts.as_ref().zip(server.as_ref()).map(|(opts, final_report)| {
        let fsync = stats.as_ref().map(|s| {
            let mut merged = bb_telemetry::HistogramSnapshot::default();
            for sh in &s.metrics.shards {
                merged.merge(&sh.wal_fsync_ns);
            }
            merged
        });
        let snapshot_bytes: u64 = stats
            .as_ref()
            .map(|s| s.metrics.shards.iter().map(|sh| sh.snapshot_bytes).sum())
            .unwrap_or(0);
        let (topo, routes) = pod_topology(pods, hops);
        let check_config = ServerConfig {
            workers: arg("--workers", 4),
            queue_depth: arg("--queue-depth", 4_096),
            batched_decide,
            durable: Some(opts.clone()),
            ..ServerConfig::default()
        };
        let t0 = Instant::now();
        let check = BbServer::start("127.0.0.1:0", &topo, &routes, &check_config)
            .expect("restart daemon from the data directory");
        let restart_recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        let snap = check.stats_snapshot();
        let recovery_replayed_records: u64 = snap
            .metrics
            .shards
            .iter()
            .map(|s| s.recovery_replayed_records)
            .sum();
        let check_report = check.shutdown();
        let recovery_matches = check_report.resident_flows == final_report.resident_flows
            && check_report.per_shard == final_report.per_shard;
        if !recovery_matches {
            eprintln!(
                "recovery check FAILED: recovered {} resident flows / {:?}, daemon finished with {} / {:?}",
                check_report.resident_flows,
                check_report.per_shard,
                final_report.resident_flows,
                final_report.per_shard
            );
        }
        let q = |p: f64| {
            fsync
                .as_ref()
                .and_then(|h| h.quantile_ns(p))
                .map(|ns| ns as f64 / 1e3)
        };
        DurableReport {
            wal_flush_ms,
            snapshot_every,
            fsync_count: fsync.as_ref().map_or(0, |h| h.count),
            fsync_p50_us: q(0.50),
            fsync_p99_us: q(0.99),
            snapshot_bytes,
            restart_recovery_ms,
            recovery_replayed_records,
            recovered_resident_flows: check_report.resident_flows,
            recovery_matches,
        }
    });
    let verified = verified.map(|v| v && durable_row.as_ref().is_none_or(|d| d.recovery_matches));

    let report = LoadgenReport {
        pods,
        hops,
        domains,
        clients,
        requests_per_client: requests,
        offered_rate_per_client_hz: rate_hz,
        seed,
        batched_decide,
        decisions,
        admitted,
        rejected: decisions - admitted,
        overloaded,
        concurrent_connections: (connections > 0).then_some(connections),
        connection_fairness: (connections > 0)
            .then(|| {
                let per_conn: Vec<u64> = results.iter().flat_map(|r| r.per_conn.clone()).collect();
                fairness(&per_conn)
            })
            .flatten(),
        elapsed_s: elapsed,
        throughput_decisions_per_s: decisions as f64 / elapsed,
        setup_latency_p50_us: percentile(&latencies, 0.50),
        setup_latency_p90_us: percentile(&latencies, 0.90),
        setup_latency_p99_us: percentile(&latencies, 0.99),
        path_cache_hit_rate: stats.as_ref().and_then(|s| s.metrics.path_cache_hit_rate()),
        allocs_per_decision,
        verified,
        durable: durable_row,
        timeline,
        stats,
        server,
        peer_servers,
        federation_residency_ok: fed_consistent,
    };
    println!(
        "{} decisions in {:.2} s -> {:.0} decisions/s; admitted {}, setup p50 {:.0} us, p99 {:.0} us",
        report.decisions,
        report.elapsed_s,
        report.throughput_decisions_per_s,
        report.admitted,
        report.setup_latency_p50_us,
        report.setup_latency_p99_us
    );
    if let Some(n) = report.concurrent_connections {
        match &report.connection_fairness {
            Some(f) => println!(
                "connections: {n} persistent; per-connection decisions min {} / mean {:.1} / \
                 max {} (spread {:.2})",
                f.decisions_min, f.decisions_mean, f.decisions_max, f.spread
            ),
            None => println!("connections: {n} persistent; no decisions recorded"),
        }
    }
    if let Some(rate) = report.path_cache_hit_rate {
        println!("path cache: {:.1}% decide-phase hit rate", rate * 100.0);
    }
    if let Some(apd) = report.allocs_per_decision {
        println!("allocations: {apd:.1} per decision (count-allocs)");
    }
    if let Some(srv) = &report.server {
        println!(
            "daemon: {} resident flows across {} shards, {} shed under overload",
            srv.resident_flows,
            srv.per_shard.len(),
            srv.overloaded
        );
    }
    if report.domains > 1 && !report.peer_servers.is_empty() {
        println!(
            "federation: downstream residents {:?} -> {}",
            report
                .peer_servers
                .iter()
                .map(|p| p.resident_flows)
                .collect::<Vec<_>>(),
            match report.federation_residency_ok {
                Some(true) => "zero residue",
                Some(false) => "RESIDUE LEAKED",
                None => "unchecked",
            }
        );
    }
    if let Some(d) = &report.durable {
        println!(
            "durable: {} fsyncs (p99 {:.0} us), snapshot {} B; restart recovered {} flows \
             ({} journal records) in {:.1} ms -> {}",
            d.fsync_count,
            d.fsync_p99_us.unwrap_or(f64::NAN),
            d.snapshot_bytes,
            d.recovered_resident_flows,
            d.recovery_replayed_records,
            d.restart_recovery_ms,
            if d.recovery_matches {
                "match"
            } else {
                "MISMATCH"
            }
        );
    }
    if let Some(last) = report.timeline.last() {
        println!(
            "telemetry: {} polls; at t={:.2}s decided {} (queue max {}, decision p99 {:.0} us)",
            report.timeline.len(),
            last.t_s,
            last.decided,
            last.queue_depth_max,
            last.decision_p99_us.unwrap_or(f64::NAN)
        );
    }
    if !out.is_empty() {
        std::fs::write(&out, serde::json::to_string_pretty(&report)).expect("write bench JSON");
        println!("wrote {out}");
    }
    if verified == Some(false)
        || report.durable.is_some_and(|d| !d.recovery_matches)
        || report.federation_residency_ok == Some(false)
    {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::{fairness, Downsampler};

    #[test]
    fn downsampler_passes_short_runs_through_unchanged() {
        let mut d = Downsampler::new(4);
        for i in 0..4u64 {
            d.offer(i);
        }
        assert_eq!(d.into_points(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn downsampler_bounds_the_series_and_keeps_a_strided_subsequence() {
        for n in [0u64, 1, 5, 599, 600, 601, 1_200, 1_201, 4_999, 100_000] {
            let mut d = Downsampler::new(600);
            for i in 0..n {
                d.offer(i);
            }
            let pts = d.into_points();
            assert!(pts.len() <= 600, "offered {n}, held {}", pts.len());
            if n == 0 {
                assert!(pts.is_empty());
                continue;
            }
            // The retained samples are exactly the consecutive
            // multiples of one power-of-two stride, from the first.
            let stride = if pts.len() > 1 { pts[1] } else { 1 };
            assert!(stride.is_power_of_two(), "offered {n}, stride {stride}");
            for (k, &p) in pts.iter().enumerate() {
                assert_eq!(p, k as u64 * stride, "offered {n}");
            }
            // And they span the run: the next kept index is off the end.
            assert!(pts.len() as u64 * stride >= n, "offered {n} not covered");
        }
    }

    #[test]
    fn downsampler_decimation_halves_at_the_cap() {
        let mut d = Downsampler::new(4);
        for i in 0..5u64 {
            d.offer(i);
        }
        // The fifth sample overflowed the cap: odd indices dropped.
        assert_eq!(d.into_points(), vec![0, 2, 4]);
    }

    #[test]
    fn fairness_of_no_connections_is_none() {
        assert!(fairness(&[]).is_none());
    }

    #[test]
    fn fairness_of_all_idle_connections_is_none_not_nan() {
        // The regression: with --connections exceeding what the seeded
        // streams ever touched, every entry could be zero and the old
        // spread computed 0/0.
        assert!(fairness(&[0, 0, 0, 0]).is_none());
    }

    #[test]
    fn idle_connections_are_excluded_from_the_spread() {
        let f = fairness(&[10, 0, 14, 0, 12, 0]).expect("live connections present");
        assert_eq!(f.decisions_min, 10);
        assert_eq!(f.decisions_max, 14);
        assert!((f.decisions_mean - 12.0).abs() < 1e-9);
        assert!((f.spread - 4.0 / 12.0).abs() < 1e-9);
        assert_eq!(f.idle_connections, 3);
        assert!(f.spread.is_finite());
    }

    #[test]
    fn uniform_live_connections_are_perfectly_fair() {
        let f = fairness(&[7, 7, 7]).expect("live connections present");
        assert_eq!(f.decisions_min, 7);
        assert_eq!(f.decisions_max, 7);
        assert!((f.spread).abs() < 1e-9);
        assert_eq!(f.idle_connections, 0);
    }
}
