//! `bb-server` — run the concurrent bandwidth-broker daemon.
//!
//! Serves COPS admission requests over TCP for a pod-sharded domain
//! (the `domain_scale` topology: disjoint chains of identical links).
//! Runs until stdin closes (or the line `quit` arrives), then shuts
//! down cleanly and prints the final accounting as JSON.
//!
//! ```text
//! bb-server [--addr 127.0.0.1:3288] [--pods 64] [--hops 5]
//!           [--workers 4] [--queue-depth 1024]
//!           [--io-threads 2]                # netpoll event loops
//!           [--idle-timeout-ms 0]           # 0 disables mid-frame idle close
//!           [--peer HOST:PORT]              # dial downstream broker (federation)
//!           [--no-batched-decide]           # lock-taking decide path
//!           [--stats-addr 127.0.0.1:3289]   # "" disables telemetry
//!           [--data-dir PATH]               # enables durability
//!           [--wal-flush-ms 5] [--snapshot-every 10000]
//!           [--replica-of HOST:PORT]        # warm standby of a durable primary
//! ```
//!
//! `--no-batched-decide` disables the lock-free batched decide path
//! (seqlock path summaries + path×class request grouping) and decides
//! every request under the shard read lock instead — the comparison
//! baseline for the batched-gain CI gate.
//!
//! `--peer` federates this daemon with a downstream domain: per-flow
//! requests are answered only after the whole chain of brokers admits
//! the flow (PEER-DEC / PEER-COMMIT / PEER-RELEASE; see DESIGN.md §4i).
//! Launch chains terminal-first — the dial retries for up to ten
//! seconds, then startup fails. Federation composes with everything
//! except `--data-dir` (durability journals local decisions only).
//!
//! `--idle-timeout-ms` closes connections that sit mid-frame (a partial
//! COPS message buffered, no completion) past the deadline — the
//! slow-loris guard. Complete-frame-then-silent connections are never
//! touched, so long-lived idle edges stay up.
//!
//! With `--data-dir` the daemon journals every committed decision and
//! periodically snapshots its MIBs under the directory; at startup it
//! recovers whatever state the directory holds **before** accepting
//! connections, and prints how many journal records it replayed.
//!
//! `--replica-of` starts a warm standby: it dials the primary's client
//! port, bootstraps from its latest snapshot, tails the journal into a
//! live broker image, and accepts **no** client connection. `--addr` is
//! the address it will serve on *after* promotion. Promotion happens
//! when the primary's connection dies, or on the stdin line `promote`
//! (the in-process twin of the wire REPL-PROMOTE). Invalid flag
//! combinations (`--replica-of` with `--peer` or `--data-dir`,
//! `--data-dir` with `--peer`) are refused with exit code 64 and a
//! one-line reason on stderr.
//!
//! The stats address serves live telemetry while the daemon runs:
//! `GET /stats` returns a JSON snapshot (per-shard admission counters
//! with the rejection taxonomy, decision/setup latency histograms,
//! queue gauges, class directory); `GET /metrics` returns the same as
//! Prometheus text exposition.

use std::io::BufRead;

use bb_server::{BbServer, DurableOptions, ServerConfig};
use netsim::topology::{SchedulerSpec, Topology};
use qos_units::{Bits, Nanos, Rate};

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let addr: String = arg("--addr", "127.0.0.1:3288".to_string());
    let pods: usize = arg("--pods", 64);
    let hops: usize = arg("--hops", 5);
    let stats_addr: String = arg("--stats-addr", "127.0.0.1:3289".to_string());
    let data_dir: String = arg("--data-dir", String::new());
    let idle_ms: u64 = arg("--idle-timeout-ms", 0);
    let peer: String = arg("--peer", String::new());
    let replica_of: String = arg("--replica-of", String::new());
    let config = ServerConfig {
        workers: arg("--workers", 4),
        queue_depth: arg("--queue-depth", 1024),
        io_threads: arg("--io-threads", 2),
        idle_timeout: (idle_ms > 0).then(|| std::time::Duration::from_millis(idle_ms)),
        batched_decide: !std::env::args().any(|a| a == "--no-batched-decide"),
        peer: (!peer.is_empty()).then_some(peer),
        replica_of: (!replica_of.is_empty()).then_some(replica_of),
        stats_addr: (!stats_addr.is_empty()).then_some(stats_addr),
        durable: (!data_dir.is_empty()).then(|| DurableOptions {
            data_dir: data_dir.clone().into(),
            wal_flush: std::time::Duration::from_millis(arg("--wal-flush-ms", 5)),
            snapshot_every: arg("--snapshot-every", 10_000),
        }),
        ..ServerConfig::default()
    };

    // The paper's evaluation link: 1.5 Mb/s, CsVC, 1500 B packets.
    let (topo, routes) = Topology::pod_chains(
        pods,
        hops,
        Rate::from_bps(1_500_000),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    );

    // Refuse invalid flag combinations before anything binds, with a
    // stable exit code wrappers can distinguish from a crash.
    if let Err(e) = bb_server::startup::validate(&config) {
        eprintln!("bb-server: {e}");
        std::process::exit(e.exit_code());
    }

    let server = BbServer::start(&addr, &topo, &routes, &config).expect("bind and start daemon");
    if server.is_replica() {
        println!(
            "bb-server standby of {} (will serve on {} after promotion; \
             stdin `promote` or primary death promotes)",
            config.replica_of.as_deref().unwrap_or("?"),
            server.local_addr(),
        );
    } else {
        println!(
            "bb-server listening on {} ({pods} pods x {hops} hops, {} workers, queue {})",
            server.local_addr(),
            config.workers,
            config.queue_depth
        );
    }
    if let Some(stats) = server.stats_addr() {
        println!("telemetry on http://{stats}/stats and http://{stats}/metrics");
    }
    if let Some(peer) = &config.peer {
        println!("federated: per-flow admissions chained through peer {peer}");
    }
    if let Some(opts) = &config.durable {
        let replayed: u64 = server
            .stats_snapshot()
            .metrics
            .shards
            .iter()
            .map(|s| s.recovery_replayed_records)
            .sum();
        println!(
            "durable under {} (flush every {:?}, snapshot every {} records); recovery replayed {replayed} journal records",
            opts.data_dir.display(),
            opts.wal_flush,
            opts.snapshot_every
        );
    }
    println!("close stdin or type `quit` to stop");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(l) if l.trim() == "promote" => {
                // Explicit operator promotion; a no-op (with a note)
                // on a daemon that is not a standby. The "promoted:
                // listening on" line prints from the promotion path
                // itself, so wire- and stdin-triggered promotions look
                // identical to a watcher.
                if server.promote().is_none() && !server.is_replica() {
                    println!("bb-server: not a standby; `promote` ignored");
                }
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let report = server.shutdown();
    println!("{}", serde::json::to_string_pretty(&report));
}
