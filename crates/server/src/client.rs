//! A minimal blocking COPS client — the edge-router side of the
//! conversation, as used by the load generator and the tests.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bb_core::cops::{self, Decision};
use bb_core::signaling::FlowRequest;
use qos_units::Time;
use vtrs::packet::FlowId;

use crate::frame::FrameReader;

/// One edge router's connection to the daemon.
pub struct CopsClient {
    stream: TcpStream,
    reader: FrameReader,
}

impl CopsClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// I/O errors from the connect.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(CopsClient {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// Sets how long [`CopsClient::recv_decision`] may block.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket option.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends a flow admission request (`REQ`) without waiting.
    ///
    /// # Errors
    ///
    /// I/O errors from the write.
    pub fn send_request(&mut self, req: &FlowRequest) -> io::Result<()> {
        self.stream.write_all(&cops::encode_request(req))
    }

    /// Sends a flow-departed notice (`DRQ`).
    ///
    /// # Errors
    ///
    /// I/O errors from the write.
    pub fn send_delete(&mut self, flow: FlowId) -> io::Result<()> {
        self.stream.write_all(&cops::encode_delete(flow))
    }

    /// Sends buffer-empty feedback (`RPT`).
    ///
    /// # Errors
    ///
    /// I/O errors from the write.
    pub fn send_buffer_empty(&mut self, macroflow: FlowId, at: Time) -> io::Result<()> {
        self.stream
            .write_all(&cops::encode_buffer_empty(macroflow, at))
    }

    /// Blocks until the next `DEC` arrives and decodes it.
    ///
    /// # Errors
    ///
    /// I/O errors, connection close, or protocol violations (surfaced
    /// as [`io::ErrorKind::InvalidData`]).
    pub fn recv_decision(&mut self) -> io::Result<Decision> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.reader.next_frame() {
                Ok(Some(wire)) => {
                    let mut buf = wire;
                    let frame = cops::decode_frame(&mut buf)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    return cops::decode_decision(&frame)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.reader.extend(&chunk[..n]);
        }
    }

    /// Request → decision round trip.
    ///
    /// # Errors
    ///
    /// As [`CopsClient::send_request`] and [`CopsClient::recv_decision`].
    pub fn request(&mut self, req: &FlowRequest) -> io::Result<Decision> {
        self.send_request(req)?;
        self.recv_decision()
    }

    /// Splits off an independently owned handle to the same socket (for
    /// open-loop send/receive threads).
    ///
    /// # Errors
    ///
    /// I/O errors from the clone.
    pub fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.stream.try_clone()
    }
}
