//! `bb-server`: a concurrent bandwidth-broker daemon.
//!
//! The paper's broker (see [`bb_core`]) decides admission from its MIBs
//! alone — no router is consulted — so the daemon form of it is pure
//! control-plane software: accept COPS connections from edge routers,
//! decode REQ/RPT/DRQ messages, run admission, push DEC messages back.
//! This crate adds exactly that deployment shell, in three layers:
//!
//! * [`frame`] — incremental framing of the COPS byte stream (partial
//!   reads, bounded frame sizes);
//! * `conn` — the event-driven connection layer: a fixed pool of
//!   [`netpoll`]-based io loops multiplexing every edge connection
//!   (edge-triggered readiness, per-pass shard-batched decides,
//!   idle/slow-loris deadlines);
//! * [`server`] — the daemon: io event loops, pod-sharded broker
//!   workers behind bounded queues with explicit overload shedding,
//!   clean shutdown;
//! * [`client`] — a small blocking client used by the load generator,
//!   the integration tests, and any experiment that wants to speak to
//!   the daemon over real TCP;
//! * [`stats`] — the side telemetry endpoint: a second TCP listener
//!   serving a JSON [`stats::StatsSnapshot`] (`GET /stats`) and
//!   Prometheus text exposition (`GET /metrics`) of the live
//!   [`bb_telemetry`] registry, plus the matching fetch helpers.
//!
//! Concurrency never changes admission semantics: shards own
//! link-disjoint pods (see [`bb_core::shard`]), so the daemon's
//! decisions match a serial broker fed the same per-pod request order —
//! the property the integration tests and `bb-loadgen --verify` check
//! flow for flow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub(crate) mod conn;
pub(crate) mod fed;
pub mod frame;
pub(crate) mod repl;
pub mod server;
pub mod startup;
pub mod stats;

pub use client::CopsClient;
pub use frame::{FrameError, FrameReader, MAX_FRAME};
pub use server::{
    process_rss_bytes, BbServer, ClassUsage, DurableOptions, ServerConfig, ServerReport,
    ThreadFailures,
};
pub use startup::StartupError;
pub use stats::{fetch_metrics_text, fetch_stats, StatsSnapshot};
