//! WAL-shipping replication: the high-availability layer.
//!
//! The paper's architecture concentrates a whole domain's QoS state in
//! the broker (§2), which makes the broker the domain's single point of
//! failure. `bb-durable` already bounds *data* loss — every committed
//! decision is journaled — but recovery-from-disk still costs a full
//! restart. This module closes the availability gap with a warm
//! standby:
//!
//! ```text
//!   PRIMARY (durable)                      STANDBY (--replica-of)
//!   ShardStore ──LogSink──▶ REPL-RECORDS ──▶ Job::ReplApply ─▶ live
//!       │ bootstrap: REPL-SNAPSHOT chunks     (same replay entry      BrokerShard
//!       │            + journal prefix          points recovery uses)
//!       ◀────────────── REPL-ACK ⟨epoch,off⟩ ──┘
//!   DEC release gated on the covering ack (semi-synchronous)
//! ```
//!
//! * **Semi-synchronous acknowledgement.** A committed decision's `DEC`
//!   is parked until the standby's ack covers the journal position of
//!   the record that encodes it ([`ReplState::gate`]). An admitted flow
//!   the edge has *seen* admitted therefore exists on the standby — the
//!   zero-lost-admissions property `bb-loadgen --failover` checks. The
//!   standby acks after *enqueueing* the apply jobs; that is sound
//!   because promotion drains every shard queue before the standby
//!   serves its first client.
//! * **Fail open on standby death.** Replication protects availability;
//!   it must not create a second liveness dependency. When the standby's
//!   link drops, the primary releases every parked `DEC`, detaches the
//!   sinks, and keeps serving alone ([`ReplState::fail_open`]).
//! * **Promotion.** On primary death (repl-link EOF), an explicit
//!   `REPL-PROMOTE` frame, a `promote` line on stdin, or
//!   [`crate::BbServer::promote`], the standby drains its apply queues,
//!   resumes the clock past the highest replicated timestamp, binds the
//!   client listener it had deferred, and serves from the replicated
//!   image ([`promote`]).
//!
//! Bootstrap is gapless: [`bb_durable::ShardStore::attach_sink`] reads
//! the snapshot and journal prefix and installs the sink in one critical
//! section, so every record is either in the shipped prefix or observed
//! by the sink — never neither, never both.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use crossbeam::channel;
use parking_lot::Mutex;
use qos_units::Time;

use bb_core::cops::{self, ReplAck, ReplRecords, ReplSnapshot};
use bb_durable::{
    decode_snapshot, FrameCursor, FrameError, LogSink, SinkBootstrap, WalPosition, WalRecord,
};
use bb_telemetry::MetricsRegistry;

use crate::conn::ReplyHandle;
use crate::server::{Dispatch, Job};

/// Primary-side replication state: the ack watermark and the parked
/// `DEC`s per shard. Lives in `Dispatch` whether or not a standby ever
/// attaches — an unattached daemon pays one atomic load per decision.
pub(crate) struct ReplState {
    shards: Vec<Mutex<ShardRepl>>,
    /// A standby is attached and sinks are (being) installed. Gating
    /// starts the moment this rises; records committed before their
    /// shard's sink installs still reach the standby via the bootstrap
    /// journal prefix, whose covering ack releases them.
    attached: AtomicBool,
    /// Shipped-but-unacked records across all shards (the lag gauge).
    unacked: AtomicU64,
}

#[derive(Default)]
struct ShardRepl {
    /// Highest ⟨epoch, offset⟩ the standby has acknowledged.
    acked: Option<WalPosition>,
    /// One entry per shipped-but-unacked record, keyed by its journal
    /// position; `DEC`s gated on that record ride in the value.
    pending: BTreeMap<(u64, u64), Vec<(ReplyHandle, Bytes)>>,
}

impl ReplState {
    pub(crate) fn new(shards: usize) -> Self {
        ReplState {
            shards: (0..shards)
                .map(|_| Mutex::new(ShardRepl::default()))
                .collect(),
            attached: AtomicBool::new(false),
            unacked: AtomicU64::new(0),
        }
    }

    /// True while a standby is attached (decisions are being gated).
    pub(crate) fn is_attached(&self) -> bool {
        self.attached.load(Ordering::SeqCst)
    }

    /// Claims the single standby slot, resetting per-shard state first
    /// so a watermark from an earlier standby can never release this
    /// one's gated decisions. `false` when a standby is already
    /// attached.
    pub(crate) fn try_attach(&self) -> bool {
        if self.attached.load(Ordering::SeqCst) {
            return false;
        }
        for shard in &self.shards {
            let mut s = shard.lock();
            s.acked = None;
            s.pending.clear();
        }
        self.unacked.store(0, Ordering::SeqCst);
        self.attached
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Counts one record shipped to the standby; returns the lag gauge.
    pub(crate) fn note_shipped(&self, shard: usize, pos: WalPosition) -> u64 {
        let mut s = self.shards[shard].lock();
        // An ack can cover a record before the shipping thread gets
        // here (the position is known at append time); don't resurrect.
        if s.acked.is_some_and(|a| a >= pos) {
            return self.unacked.load(Ordering::SeqCst);
        }
        s.pending.entry((pos.epoch, pos.end_offset)).or_default();
        self.unacked.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Gates one decision's reply on the ack covering its journal
    /// position: returns the bytes back when they should be sent now
    /// (no standby, or already acked), `None` when parked.
    pub(crate) fn gate(
        &self,
        shard: usize,
        pos: WalPosition,
        reply: &ReplyHandle,
        bytes: Bytes,
    ) -> Option<Bytes> {
        let mut s = self.shards[shard].lock();
        if !self.attached.load(Ordering::SeqCst) {
            return Some(bytes);
        }
        if s.acked.is_some_and(|a| a >= pos) {
            return Some(bytes);
        }
        s.pending
            .entry((pos.epoch, pos.end_offset))
            .or_default()
            .push((reply.clone(), bytes));
        None
    }

    /// Advances a shard's watermark, returning every reply the ack
    /// released plus the updated lag gauge.
    pub(crate) fn ack(&self, shard: usize, pos: WalPosition) -> (Vec<(ReplyHandle, Bytes)>, u64) {
        let mut s = self.shards[shard].lock();
        if s.acked.is_none_or(|a| a < pos) {
            s.acked = Some(pos);
        }
        // Everything at or before ⟨epoch, offset⟩ is covered; an ack in
        // a later epoch covers every earlier epoch's records too (the
        // stream is in order).
        let rest = s.pending.split_off(&(pos.epoch, pos.end_offset + 1));
        let covered = std::mem::replace(&mut s.pending, rest);
        self.unacked
            .fetch_sub(covered.len() as u64, Ordering::SeqCst);
        let lag = self.unacked.load(Ordering::SeqCst);
        (covered.into_values().flatten().collect(), lag)
    }

    /// The standby died: stop gating and hand back every parked reply
    /// so the primary serves alone again (availability over sync).
    pub(crate) fn fail_open(&self) -> Vec<(ReplyHandle, Bytes)> {
        self.attached.store(false, Ordering::SeqCst);
        let mut drained = Vec::new();
        for shard in &self.shards {
            let mut s = shard.lock();
            for (_, replies) in std::mem::take(&mut s.pending) {
                drained.extend(replies);
            }
            s.acked = None;
        }
        self.unacked.store(0, Ordering::SeqCst);
        drained
    }
}

/// Standby-side state; `Some` in `Dispatch` only on a daemon started
/// with `--replica-of`.
pub(crate) struct ReplicaState {
    /// Client address to bind at promotion (deferred from startup).
    addr: String,
    shards: Vec<Mutex<ReplicaShard>>,
    /// Records applied (mirrored into `bb_repl_applied_records_total`).
    applied: AtomicU64,
    /// Highest `now` timestamp seen in an applied record or restored
    /// snapshot — the promoted daemon's clock base, so post-promotion
    /// journal-able time stays monotone with the replicated history.
    max_now: AtomicU64,
    promoted: AtomicBool,
    bound: Mutex<Option<SocketAddr>>,
}

#[derive(Default)]
struct ReplicaShard {
    /// Accumulating bootstrap snapshot chunks.
    snap: Vec<u8>,
    /// Partial WAL frame carried between record batches (bootstrap
    /// prefix chunks split mid-frame).
    tail: Vec<u8>,
}

impl ReplicaState {
    pub(crate) fn new(addr: String, shards: usize) -> Self {
        ReplicaState {
            addr,
            shards: (0..shards)
                .map(|_| Mutex::new(ReplicaShard::default()))
                .collect(),
            applied: AtomicU64::new(0),
            max_now: AtomicU64::new(0),
            promoted: AtomicBool::new(false),
            bound: Mutex::new(None),
        }
    }

    /// The promoted listener's address, once bound.
    pub(crate) fn bound_addr(&self) -> Option<SocketAddr> {
        *self.bound.lock()
    }

    /// True once promotion has started (or finished).
    pub(crate) fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }

    /// Folds one applied record into the clock base and the applied
    /// counter; returns the counter for the telemetry mirror.
    pub(crate) fn note_applied(&self, now: Time) -> u64 {
        self.max_now.fetch_max(now.as_nanos(), Ordering::SeqCst);
        self.applied.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Folds a restored snapshot's capture time into the clock base.
    pub(crate) fn note_restored(&self, as_of: Time) {
        self.max_now.fetch_max(as_of.as_nanos(), Ordering::SeqCst);
    }
}

/// The commit-time timestamp a WAL record carries.
pub(crate) fn record_now(rec: &WalRecord) -> Time {
    match rec {
        WalRecord::Admit { now, .. }
        | WalRecord::Release { now, .. }
        | WalRecord::Report { now, .. }
        | WalRecord::Tick { now } => *now,
    }
}

/// One shard's outbound replication sink: every frame the store commits
/// is queued on the standby's connection as a `REPL-RECORDS` frame.
/// Runs under the store's internal mutex — it only queues bytes.
/// Holds `Dispatch` weakly: the store holds the sink, the dispatch
/// holds the store, and a strong edge back would leak the cycle.
pub(crate) struct ShardSink {
    shard: u32,
    handle: ReplyHandle,
    dispatch: Weak<Dispatch>,
}

impl ShardSink {
    pub(crate) fn new(shard: u32, handle: ReplyHandle, dispatch: Weak<Dispatch>) -> Self {
        ShardSink {
            shard,
            handle,
            dispatch,
        }
    }
}

impl LogSink for ShardSink {
    fn record(&self, pos: WalPosition, frame: &[u8]) {
        let Some(dispatch) = self.dispatch.upgrade() else {
            return;
        };
        let lag = dispatch.repl.note_shipped(self.shard as usize, pos);
        dispatch.metrics.set_repl_lag(lag);
        dispatch.metrics.record_repl_bytes(frame.len() as u64);
        self.handle.send(cops::encode_repl_records(&ReplRecords {
            shard: self.shard,
            epoch: pos.epoch,
            end_offset: pos.end_offset,
            stamp_ns: dispatch.monotonic_ns(),
            frames: Bytes::from(frame),
        }));
    }

    fn rotate(&self, epoch: u64) {
        self.handle
            .send(cops::encode_repl_rotate(self.shard, epoch));
    }
}

/// Ships one shard's bootstrap to a freshly attached standby: the
/// snapshot file in [`cops::REPL_CHUNK`]-sized `REPL-SNAPSHOT` chunks,
/// then the journal prefix as `REPL-RECORDS` batches whose cumulative
/// `end_offset`s let the standby's acks release any decision gated on a
/// prefix record. Runs inside the store's attach critical section —
/// everything is queued, nothing blocks.
pub(crate) fn ship_bootstrap(
    shard: u32,
    handle: &ReplyHandle,
    metrics: &MetricsRegistry,
    b: &SinkBootstrap<'_>,
) {
    debug_assert!(
        !b.snapshot.is_empty(),
        "a committed store always has a snapshot"
    );
    let chunks = b.snapshot.chunks(cops::REPL_CHUNK);
    let total = chunks.len();
    for (i, chunk) in chunks.enumerate() {
        metrics.record_repl_bytes(chunk.len() as u64);
        handle.send(cops::encode_repl_snapshot(&ReplSnapshot {
            shard,
            epoch: b.epoch,
            last: i + 1 == total,
            chunk: Bytes::from(chunk),
        }));
    }
    let mut shipped = 0usize;
    for chunk in b.journal.chunks(cops::REPL_CHUNK) {
        shipped += chunk.len();
        metrics.record_repl_bytes(chunk.len() as u64);
        handle.send(cops::encode_repl_records(&ReplRecords {
            shard,
            epoch: b.epoch,
            end_offset: shipped as u64,
            // Zero marks bootstrap traffic: the echoing ack skips the
            // RTT histogram (the prefix's latency is not an ack RTT).
            stamp_ns: 0,
            frames: Bytes::from(chunk),
        }));
    }
}

/// Standby: folds one `REPL-SNAPSHOT` chunk in; on the final chunk,
/// decodes the image and queues its restore on the owning shard worker.
/// `false` on a malformed frame (shard out of range).
pub(crate) fn standby_snapshot(dispatch: &Arc<Dispatch>, snap: &ReplSnapshot) -> bool {
    let Some(replica) = dispatch.replica.as_ref() else {
        return false;
    };
    let idx = snap.shard as usize;
    if idx >= dispatch.jobs.len() {
        return false;
    }
    let mut s = replica.shards[idx].lock();
    s.snap.extend_from_slice(&snap.chunk);
    if !snap.last {
        return true;
    }
    let bytes = std::mem::take(&mut s.snap);
    drop(s);
    // A bootstrap image that does not decode means the standby cannot
    // ever reach the primary's state; crashing loudly beats promoting a
    // wrong image later.
    let (meta, image) = decode_snapshot(&bytes)
        .unwrap_or_else(|e| panic!("replica bootstrap: shard {idx} snapshot: {e}"));
    replica.note_restored(meta.as_of);
    let _ = dispatch.jobs[idx].send(Job::ReplRestore {
        image: Box::new(image),
    });
    true
}

/// Standby: appends a `REPL-RECORDS` batch to the shard's stream,
/// queues every completed WAL frame for apply, and acks the batch's
/// watermark back to the primary. Acking at enqueue (not apply) is
/// sound because promotion drains the queues before serving.
/// `false` on a malformed frame.
pub(crate) fn standby_records(
    dispatch: &Arc<Dispatch>,
    rec: &ReplRecords,
    reply: &ReplyHandle,
) -> bool {
    let Some(replica) = dispatch.replica.as_ref() else {
        return false;
    };
    let idx = rec.shard as usize;
    if idx >= dispatch.jobs.len() {
        return false;
    }
    let mut s = replica.shards[idx].lock();
    s.tail.extend_from_slice(&rec.frames);
    let mut records = Vec::new();
    let consumed = {
        let mut cursor = FrameCursor::new(&s.tail);
        loop {
            match cursor.next_frame() {
                Ok(Some(frame)) => {
                    match bb_durable::record::decode_payload::<WalRecord>(frame, cursor.offset()) {
                        Ok(record) => records.push(record),
                        Err(e) => panic!("replica stream: shard {idx}: {e}"),
                    }
                }
                Ok(None) | Err(FrameError::Torn { .. }) => break,
                Err(e) => panic!("replica stream: shard {idx}: {e}"),
            }
        }
        cursor.offset()
    };
    s.tail.drain(..consumed);
    drop(s);
    for record in records {
        // Blocking send: a replicated record must never be dropped at a
        // momentarily full queue — the worker drains independently.
        let _ = dispatch.jobs[idx].send(Job::ReplApply { record });
    }
    reply.send(cops::encode_repl_ack(&ReplAck {
        shard: rec.shard,
        epoch: rec.epoch,
        end_offset: rec.end_offset,
        stamp_ns: rec.stamp_ns,
    }));
    true
}

/// Standby: the primary rotated a shard's journal; offsets restart at
/// zero under the new epoch. Record batches are frame-aligned, so the
/// carried tail is empty at a rotation by construction.
pub(crate) fn standby_rotate(dispatch: &Arc<Dispatch>, shard: u32) -> bool {
    let Some(replica) = dispatch.replica.as_ref() else {
        return false;
    };
    let idx = shard as usize;
    if idx >= dispatch.jobs.len() {
        return false;
    }
    let mut s = replica.shards[idx].lock();
    debug_assert!(s.tail.is_empty(), "rotation inside a torn record batch");
    s.tail.clear();
    true
}

/// Promotes the standby: seal the replay (drain every shard's apply
/// queue behind a barrier), resume the clock past the highest
/// replicated timestamp, bind the deferred client listener, and hand it
/// to io loop 0. Idempotent — a second caller gets the first's address.
/// Returns `None` when this daemon is not a standby, is shutting down,
/// or the bind failed.
pub(crate) fn promote(dispatch: &Arc<Dispatch>) -> Option<SocketAddr> {
    let replica = dispatch.replica.as_ref()?;
    if dispatch.stop.load(Ordering::SeqCst) {
        return None;
    }
    if replica.promoted.swap(true, Ordering::SeqCst) {
        return replica.bound_addr();
    }
    // Barrier: every ReplApply/ReplRestore queued before this point is
    // applied before the first client decision — the acked-at-enqueue
    // protocol depends on exactly this drain.
    let (tx, rx) = channel::bounded::<()>(dispatch.jobs.len());
    for jobs in &dispatch.jobs {
        let _ = jobs.send(Job::Barrier { done: tx.clone() });
    }
    drop(tx);
    while rx.recv().is_ok() {}
    dispatch.resume_clock_at(replica.max_now.load(Ordering::SeqCst));
    let listener = match TcpListener::bind(&replica.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bb-server: promote: bind {}: {e}", replica.addr);
            return None;
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("bb-server: promote: nonblocking: {e}");
        return None;
    }
    let addr = listener.local_addr().ok()?;
    *replica.bound.lock() = Some(addr);
    if let Some(io) = dispatch.io_shared.get() {
        *io[0].pending_listener.lock() = Some(listener);
        io[0].waker.wake();
    }
    // The failover harness and the CI smoke job watch stdout for this.
    println!("bb-server promoted: listening on {addr}");
    Some(addr)
}
