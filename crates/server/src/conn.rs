//! Event-driven COPS connection layer.
//!
//! Replaces the seed daemon's two-threads-per-connection model (blocking
//! reader + writer) with a fixed pool of `io_threads` event loops built
//! on [`netpoll`]: each loop owns a [`netpoll::Poller`] (epoll on Linux,
//! edge-triggered), a [`netpoll::Waker`] the shard workers fire when a
//! reply is queued, and a [`DeadlineWheel`] of idle deadlines. Ten
//! thousand mostly-idle edge connections then cost ten thousand fds and
//! one readiness wait — not twenty thousand parked threads.
//!
//! ## Connection state machine
//!
//! ```text
//!            accept (loop 0)
//!                 │  round-robin hand-off
//!                 ▼
//!   ┌─► READ-DRAIN ── partial frame ──► idle deadline armed
//!   │      │ whole frames
//!   │      ▼
//!   │   PASS BATCH ── decide per shard under ONE read lock ─► jobs
//!   │      │ replies (workers → out-queue → waker)
//!   │      ▼
//!   └── WRITE-FLUSH ── `WouldBlock` ──► write interest, resume on
//!          │                            writable readiness
//!          ▼
//!        CLOSED  (EOF, error, protocol violation, idle deadline)
//! ```
//!
//! Every readiness pass decodes **all** complete frames from **all**
//! ready connections first, then runs the decide phase for the whole
//! batch grouped by shard — one shard read-lock acquisition serves every
//! connection that became ready together, where the seed design paid
//! one acquisition per request. Jobs are then enqueued per connection in
//! frame order, so the per-connection request order — the order serial
//! equivalence is defined over — is exactly preserved; reordering the
//! decide ahead of the enqueue is safe because the commit phase
//! revalidates each plan's epoch stamp.
//!
//! ## Slow-loris defense
//!
//! A connection holding a *partial* frame arms a deadline on the wheel;
//! completing a frame re-arms it, but mere dribbled bytes do not. A
//! connection that sits mid-frame past the configured timeout is closed
//! and counted (`bb_conn_idle_closed_total`). Connections with no
//! buffered partial frame are never idle-closed — an edge router that
//! signals rarely is normal, half a frame that never completes is not.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::TrySendError;
use netpoll::wheel::DeadlineWheel;
use netpoll::{Event, Interest, Poller, Token, Waker, WakerHandle};
use parking_lot::Mutex;
use qos_units::Time;
use vtrs::packet::FlowId;

use bb_core::admission::plan::AdmissionPlan;
use bb_core::cops::{
    self, OpCode, PeerAnswer, PeerCommit, PeerDecide, ReplAck, ReplRecords, ReplSnapshot,
};
use bb_core::segment::end_to_end_rate;
use bb_core::shard::shard_of_macroflow;
use bb_core::signaling::{FlowRequest, Reject, ServiceKind};
use bb_durable::WalPosition;

use crate::fed::{Origin, Pending};
use crate::frame::FrameReader;
use crate::repl;
use crate::server::{Dispatch, Job};

/// Token reserved for the loop's waker fd.
const TOKEN_WAKER: Token = Token(0);
/// Token reserved for the listener (loop 0 only).
const TOKEN_LISTENER: Token = Token(1);
/// Connection slots start here: slot `i` registers as `Token(i + 2)`.
const TOKEN_CONN_BASE: usize = 2;

/// Deadline-wheel granularity. Idle timeouts are a defense, not a
/// latency promise; 16 ms slop on a multi-second deadline is free.
const WHEEL_TICK_MS: u64 = 16;

/// Readiness-wait timeout: bounds how stale the stop flag and the
/// deadline wheel can get when nothing else wakes the loop.
const WAIT_TIMEOUT: Duration = Duration::from_millis(10);

/// Per-loop state shared with the accept path and the shard workers.
pub(crate) struct IoShared {
    /// Connections whose out-queue gained replies since the loop last
    /// flushed, as `(slot, generation)` — the generation filters
    /// entries that outlived their connection.
    dirty: Mutex<Vec<(usize, u64)>>,
    /// Newly accepted sockets handed over by the accepting loop.
    inbox: Mutex<Vec<TcpStream>>,
    /// A client listener handed to the loop mid-life: promotion binds
    /// the standby's deferred listener and parks it here (loop 0 only);
    /// the loop registers it on its next iteration and starts
    /// accepting.
    pub(crate) pending_listener: Mutex<Option<TcpListener>>,
    /// Fires the owning loop's poller.
    pub(crate) waker: WakerHandle,
}

/// The cross-thread half of one connection: the reply queue workers
/// push into, and the flags that make a send after close a no-op.
pub(crate) struct ConnShared {
    slot: usize,
    /// Unique per connection within its loop (never reused), so stale
    /// dirty-list entries and wheel deadlines are detectable.
    generation: u64,
    io: Arc<IoShared>,
    out: Mutex<VecDeque<Bytes>>,
    /// Already on the dirty list; avoids one list push per reply.
    queued: AtomicBool,
    closed: AtomicBool,
}

/// Where a shard worker sends a connection's DEC bytes. Replaces the
/// seed's per-connection `crossbeam` channel + writer thread: a send
/// queues the bytes and wakes the owning event loop, which writes them
/// out (or parks them under write interest when the socket is full).
/// Sends to a closed connection are dropped, like writes to a dead
/// writer thread were.
#[derive(Clone)]
pub(crate) struct ReplyHandle(Arc<ConnShared>);

impl ReplyHandle {
    pub(crate) fn send(&self, bytes: Bytes) {
        let c = &*self.0;
        if c.closed.load(Ordering::Acquire) {
            return;
        }
        c.out.lock().push_back(bytes);
        if !c.queued.swap(true, Ordering::AcqRel) {
            c.io.dirty.lock().push((c.slot, c.generation));
            c.io.waker.wake();
        }
    }
}

/// What kind of party sits on the other end of a connection — it
/// decides which COPS ops are legal inbound and what a close means.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnRole {
    /// An accepted connection: an edge router (REQ/DRQ/RPT) or an
    /// *upstream* broker (PEER-DEC queries, PEER-COMMIT/RELEASE) —
    /// both answered back over the same socket.
    Edge,
    /// The daemon's own outbound connection to its downstream peer
    /// domain. Only PEER-DEC *answers* arrive here, and its death
    /// fails every dependent admission closed.
    Peer,
    /// The WAL-shipping replication link. On a primary: an inbound
    /// connection a standby upgraded with REPL-HELLO (only REPL-ACKs
    /// arrive; its death fails open). On a standby: the outbound
    /// connection to the primary (snapshot chunks, record batches,
    /// rotations, and PROMOTE arrive; its death triggers promotion).
    Repl,
}

/// One live connection, owned by its event loop.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    shared: Arc<ConnShared>,
    role: ConnRole,
    interest: Interest,
    /// Bytes of the out-queue head already written (partial write).
    head_written: usize,
    /// Current idle-deadline generation; bumped to cancel lazily.
    idle_gen: u64,
    idle_armed: bool,
}

/// One decoded COPS message awaiting the batch phase of a readiness
/// pass. `Request` carries its decided plan after the batch decide.
// Like `Job`: one Request is built per admission; boxing its plan to
// shrink the enum would put a heap allocation on the hot path for the
// sake of the rarer variants.
#[allow(clippy::large_enum_variant)]
enum Action {
    Request {
        req: FlowRequest,
        shard: usize,
        plan: Option<(AdmissionPlan, u64)>,
    },
    NoRoute {
        flow: FlowId,
    },
    Delete {
        flow: FlowId,
    },
    Report {
        macroflow: FlowId,
        at: Time,
    },
    /// A per-flow edge request on a federated (peered) daemon: instead
    /// of deciding locally, park it and query the chain. The local
    /// booking happens when the downstream answer comes back.
    FedForward {
        req: FlowRequest,
        shard: usize,
    },
    /// A PEER-DEC query from an upstream broker.
    PeerQuery {
        q: PeerDecide,
        shard: usize,
    },
    /// A PEER-DEC answer from our downstream peer.
    PeerReply {
        ans: PeerAnswer,
    },
    /// A PEER-COMMIT from upstream, carrying the terminal-computed
    /// ⟨r, d⟩: assert it matches this domain's tentative booking (a
    /// mismatch means the chain disagrees on what was reserved — the
    /// only safe move is to release), then forward it on down.
    PeerCommitFwd {
        commit: PeerCommit,
    },
    /// A PEER-RELEASE from upstream: free the flow here and forward
    /// the release on down.
    PeerReleaseFwd {
        flow: FlowId,
    },
    /// Primary side: the standby acknowledged a shard's journal
    /// watermark — release the decisions gated on it.
    ReplAcked {
        ack: ReplAck,
    },
    /// Standby side: one chunk of a shard's bootstrap snapshot.
    ReplSnapshotChunk {
        snap: ReplSnapshot,
    },
    /// Standby side: a batch of committed WAL frames to apply.
    ReplRecordBatch {
        rec: ReplRecords,
    },
    /// Standby side: the primary rotated a shard's journal.
    ReplRotated {
        shard: u32,
    },
    /// Standby side: explicit promotion order from the primary.
    ReplPromote,
}

/// Everything one readiness pass decoded, per connection in arrival
/// order. The `Arc<ConnShared>` (not the slot) keeps the reply path
/// valid even for a connection that EOF'd in the same pass — its
/// requests still commit; the replies drop at the closed flag.
#[derive(Default)]
struct Pass {
    conns: Vec<(Arc<ConnShared>, Vec<Action>)>,
    frames: u64,
}

/// Why a connection is being torn down, for the telemetry taxonomy.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CloseCause {
    /// Clean EOF from the peer, or daemon shutdown.
    Eof,
    /// I/O error or COPS protocol violation.
    Error,
    /// Idle (slow-loris) deadline expired mid-frame.
    Idle,
}

/// Runs one event loop until the dispatch stop flag rises. Loop 0 owns
/// the listener and hands accepted sockets round-robin across all
/// loops (itself included) through their inboxes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn io_loop(
    loop_idx: usize,
    listener: Option<TcpListener>,
    peer: Option<(TcpStream, ConnRole)>,
    waker: Waker,
    shared: Arc<IoShared>,
    peers: Vec<Arc<IoShared>>,
    dispatch: Arc<Dispatch>,
    idle_timeout: Option<Duration>,
) {
    let mut poller = Poller::new().expect("create poller");
    poller
        .register(waker.fd(), TOKEN_WAKER, Interest::READ)
        .expect("register waker");
    if let Some(l) = &listener {
        poller
            .register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .expect("register listener");
    }

    let idle_ms = idle_timeout.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1));
    let mut wheel = idle_ms.map(|ms| {
        let slots = usize::try_from(ms / WHEEL_TICK_MS + 2).unwrap_or(usize::MAX);
        DeadlineWheel::new(slots.clamp(8, 1 << 16), WHEEL_TICK_MS)
    });
    let epoch = Instant::now();

    let mut slab: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen = 0u64;
    let mut next_loop = 0usize;

    let mut events: Vec<Event> = Vec::with_capacity(1024);
    let mut expired = Vec::new();
    let mut pass = Pass::default();

    // The daemon's outbound link (loop 0 only), installed before the
    // first accept: the downstream federation peer (a federated request
    // must never observe a configured-but-absent link), or — on a
    // standby — the replication primary. Both ride the same conn state
    // machine as inbound sockets — FrameReader, reply queue, idle
    // wheel — just under their role.
    if let Some((stream, role)) = peer {
        if let Some(slot) = install(
            stream,
            &mut slab,
            &mut free,
            &mut next_gen,
            &shared,
            &poller,
            role,
        ) {
            let conn = slab[slot].as_ref().expect("outbound conn just installed");
            let handle = ReplyHandle(Arc::clone(&conn.shared));
            match role {
                ConnRole::Peer => dispatch.fed.set_peer(handle),
                // Introduce ourselves; the primary validates the shard
                // count and answers with the bootstrap stream.
                ConnRole::Repl => {
                    handle.send(cops::encode_repl_hello(dispatch.jobs.len() as u32));
                }
                ConnRole::Edge => unreachable!("outbound links are Peer or Repl"),
            }
            dispatch.metrics.record_dial();
        }
        // On install failure a federation link stays Absent (admissions
        // fail closed with `PeerUnreachable`); a standby stays a cold
        // replica until its operator restarts it.
    }

    let mut listener = listener;
    loop {
        let _ = poller.wait(&mut events, Some(WAIT_TIMEOUT));
        if dispatch.stop.load(Ordering::SeqCst) {
            break;
        }
        let now_ms = elapsed_ms(epoch);

        // A promoted standby's deferred client listener arrives here;
        // register it and drain the accepts that raced the hand-off
        // (edge triggering would otherwise swallow them).
        if listener.is_none() {
            if let Some(l) = shared.pending_listener.lock().take() {
                poller
                    .register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
                    .expect("register promoted listener");
                listener = Some(l);
                let l = listener.as_ref().expect("just installed");
                accept_burst(l, loop_idx, &peers, &mut next_loop, &dispatch, |stream| {
                    if let Some(slot) = install(
                        stream,
                        &mut slab,
                        &mut free,
                        &mut next_gen,
                        &shared,
                        &poller,
                        ConnRole::Edge,
                    ) {
                        read_drain(
                            slot, &mut slab, &mut free, &poller, &dispatch, &mut pass, now_ms,
                            idle_ms, &mut wheel,
                        );
                    }
                });
            }
        }

        for &ev in &events {
            match ev.token {
                TOKEN_WAKER => waker.drain(),
                TOKEN_LISTENER => {
                    let l = listener.as_ref().expect("listener event without listener");
                    accept_burst(l, loop_idx, &peers, &mut next_loop, &dispatch, |stream| {
                        if let Some(slot) = install(
                            stream,
                            &mut slab,
                            &mut free,
                            &mut next_gen,
                            &shared,
                            &poller,
                            ConnRole::Edge,
                        ) {
                            read_drain(
                                slot, &mut slab, &mut free, &poller, &dispatch, &mut pass, now_ms,
                                idle_ms, &mut wheel,
                            );
                        }
                    });
                }
                Token(t) => {
                    let slot = t - TOKEN_CONN_BASE;
                    if slab.get(slot).is_none_or(Option::is_none) {
                        continue; // closed earlier in this same pass
                    }
                    if ev.writable {
                        flush_writes(slot, &mut slab, &mut free, &poller, &dispatch);
                    }
                    if (ev.readable || ev.hangup) && slab[slot].is_some() {
                        read_drain(
                            slot, &mut slab, &mut free, &poller, &dispatch, &mut pass, now_ms,
                            idle_ms, &mut wheel,
                        );
                    }
                }
            }
        }

        // Sockets handed over by the accepting loop: install and do the
        // first drain now — with edge triggering, bytes that raced the
        // registration would otherwise never produce an event.
        loop {
            let Some(stream) = shared.inbox.lock().pop() else {
                break;
            };
            if let Some(slot) = install(
                stream,
                &mut slab,
                &mut free,
                &mut next_gen,
                &shared,
                &poller,
                ConnRole::Edge,
            ) {
                read_drain(
                    slot, &mut slab, &mut free, &poller, &dispatch, &mut pass, now_ms, idle_ms,
                    &mut wheel,
                );
            }
        }

        process_pass(&mut pass, &dispatch);

        // Flush every connection with newly queued replies — the shard
        // workers' since the last pass, plus this pass's inline ones.
        let dirty = std::mem::take(&mut *shared.dirty.lock());
        for (slot, gen) in dirty {
            let Some(conn) = slab.get(slot).and_then(Option::as_ref) else {
                continue;
            };
            if conn.shared.generation != gen {
                continue;
            }
            // Clear before flushing: a reply racing in after the store
            // re-queues the slot; one racing in before it is caught by
            // the flush reading the queue afterwards.
            conn.shared.queued.store(false, Ordering::Release);
            flush_writes(slot, &mut slab, &mut free, &poller, &dispatch);
        }

        if let (Some(wheel), Some(_)) = (&mut wheel, idle_ms) {
            wheel.advance(elapsed_ms(epoch), &mut expired);
            for armed in expired.drain(..) {
                let slot = armed.token;
                let due = slab
                    .get(slot)
                    .and_then(Option::as_ref)
                    .is_some_and(|c| c.idle_armed && c.idle_gen == armed.generation);
                if due {
                    close_conn(
                        slot,
                        &mut slab,
                        &mut free,
                        &poller,
                        &dispatch,
                        CloseCause::Idle,
                    );
                }
            }
        }
    }

    // Shutdown: tear down every connection this loop owns, and balance
    // the gauge for accepted-but-never-installed sockets in the inbox.
    for slot in 0..slab.len() {
        if slab[slot].is_some() {
            close_conn(
                slot,
                &mut slab,
                &mut free,
                &poller,
                &dispatch,
                CloseCause::Eof,
            );
        }
    }
    let orphans = shared.inbox.lock().drain(..).count();
    for _ in 0..orphans {
        dispatch.metrics.record_conn_closed();
    }
}

fn elapsed_ms(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Accepts until `WouldBlock` (edge triggering reports a burst once),
/// distributing sockets round-robin: locally via `install_local`, to a
/// peer loop via its inbox + waker.
fn accept_burst(
    listener: &TcpListener,
    loop_idx: usize,
    peers: &[Arc<IoShared>],
    next_loop: &mut usize,
    dispatch: &Arc<Dispatch>,
    mut install_local: impl FnMut(TcpStream),
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                dispatch.metrics.record_accept();
                let target = *next_loop % peers.len();
                *next_loop = next_loop.wrapping_add(1);
                if target == loop_idx {
                    install_local(stream);
                } else {
                    peers[target].inbox.lock().push(stream);
                    peers[target].waker.wake();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion). The
                // pending connection stays in the backlog; the next
                // arrival re-triggers readiness.
                dispatch.metrics.record_conn_error();
                return;
            }
        }
    }
}

/// Registers a fresh socket into a slab slot under read interest.
/// Returns `None` (counting an error) when socket setup fails.
fn install(
    stream: TcpStream,
    slab: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_gen: &mut u64,
    io: &Arc<IoShared>,
    poller: &Poller,
    role: ConnRole,
) -> Option<usize> {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() {
        return None;
    }
    let slot = free.pop().unwrap_or_else(|| {
        slab.push(None);
        slab.len() - 1
    });
    *next_gen += 1;
    let shared = Arc::new(ConnShared {
        slot,
        generation: *next_gen,
        io: Arc::clone(io),
        out: Mutex::new(VecDeque::new()),
        queued: AtomicBool::new(false),
        closed: AtomicBool::new(false),
    });
    if poller
        .register(
            stream.as_raw_fd(),
            Token(slot + TOKEN_CONN_BASE),
            Interest::READ,
        )
        .is_err()
    {
        free.push(slot);
        return None;
    }
    slab[slot] = Some(Conn {
        stream,
        reader: FrameReader::new(),
        shared,
        role,
        interest: Interest::READ,
        head_written: 0,
        idle_gen: 0,
        idle_armed: false,
    });
    Some(slot)
}

/// Reads until `WouldBlock` or EOF, decoding every complete frame into
/// the pass. Manages the idle deadline: armed while a partial frame is
/// buffered, re-armed only when a frame *completes* (dribbled bytes
/// never reset it — the slow-loris case), disarmed at a frame boundary.
#[allow(clippy::too_many_arguments)]
fn read_drain(
    slot: usize,
    slab: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    poller: &Poller,
    dispatch: &Arc<Dispatch>,
    pass: &mut Pass,
    now_ms: u64,
    idle_ms: Option<u64>,
    wheel: &mut Option<DeadlineWheel>,
) {
    let mut chunk = [0u8; 16 * 1024];
    let mut actions: Vec<Action> = Vec::new();
    let mut frames_completed = false;
    let mut close = None;
    {
        let conn = slab[slot].as_mut().expect("read_drain on live conn");
        'read: loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    close = Some(CloseCause::Eof);
                    break 'read;
                }
                Ok(n) => {
                    conn.reader.extend(&chunk[..n]);
                    loop {
                        match conn.reader.next_frame() {
                            Ok(Some(frame)) => {
                                frames_completed = true;
                                pass.frames += 1;
                                // Role is re-read per frame: a
                                // REPL-HELLO upgrades the connection
                                // mid-burst, and the very next frame
                                // must decode under the new role.
                                match decode_into(&frame, dispatch, &mut actions, conn.role) {
                                    Decoded::Ok => {}
                                    Decoded::ReplHello { shards } => {
                                        if !attach_replica(conn, dispatch, shards) {
                                            close = Some(CloseCause::Error);
                                            break 'read;
                                        }
                                    }
                                    Decoded::Violation => {
                                        close = Some(CloseCause::Error);
                                        break 'read;
                                    }
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                close = Some(CloseCause::Error);
                                break 'read;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break 'read,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    close = Some(CloseCause::Error);
                    break 'read;
                }
            }
        }

        if close.is_none() {
            if let (Some(wheel), Some(idle_ms)) = (wheel.as_mut(), idle_ms) {
                let partial = conn.reader.pending() > 0;
                if partial && (!conn.idle_armed || frames_completed) {
                    conn.idle_gen += 1;
                    conn.idle_armed = true;
                    wheel.arm(now_ms, idle_ms, slot, conn.idle_gen);
                } else if !partial && conn.idle_armed {
                    conn.idle_gen += 1; // lazy-cancel the parked entry
                    conn.idle_armed = false;
                }
            }
        }

        if !actions.is_empty() {
            pass.conns.push((Arc::clone(&conn.shared), actions));
        }
    }
    if let Some(cause) = close {
        // The decoded actions still run: requests received before an
        // EOF (or before the violating frame) must reach the broker,
        // exactly as the blocking reader processed them before
        // returning. Their replies drop at the closed flag.
        close_conn(slot, slab, free, poller, dispatch, cause);
    }
}

/// What one frame decoded to, beyond the actions it pushed.
enum Decoded {
    /// Legal frame; any actions are in the pass.
    Ok,
    /// Undecodable frame, or an op illegal for the connection's role
    /// (a `DEC` sent to a server, a peer *query* on our own outbound
    /// link, a peer *answer* on an inbound one, replication traffic on
    /// the wrong side of the link).
    Violation,
    /// A standby introduced itself on an inbound connection: upgrade
    /// it to the `Repl` role (handled inline by `read_drain`, not as a
    /// pass action — the role must change before the *next* frame of
    /// the same read burst decodes).
    ReplHello { shards: u32 },
}

/// Decodes one COPS frame into pass actions.
fn decode_into(
    wire: &Bytes,
    dispatch: &Arc<Dispatch>,
    actions: &mut Vec<Action>,
    role: ConnRole,
) -> Decoded {
    let mut buf = wire.clone();
    let Ok(frame) = cops::decode_frame(&mut buf) else {
        return Decoded::Violation;
    };
    if role == ConnRole::Peer {
        // Downstream only ever answers our queries (or keeps alive).
        return match frame.op {
            OpCode::PeerDecide if cops::peer_frame_is_answer(&frame) => {
                match cops::decode_peer_answer(&frame) {
                    Ok(ans) => {
                        actions.push(Action::PeerReply { ans });
                        Decoded::Ok
                    }
                    Err(_) => Decoded::Violation,
                }
            }
            OpCode::KeepAlive => Decoded::Ok,
            _ => Decoded::Violation,
        };
    }
    if role == ConnRole::Repl {
        return decode_repl(&frame, dispatch, actions);
    }
    match frame.op {
        OpCode::Request => {
            let Ok(req) = cops::decode_request(&frame) else {
                return Decoded::Violation;
            };
            match dispatch
                .path_shard
                .get(usize::try_from(req.path.0).unwrap_or(usize::MAX))
            {
                // On a peered daemon, per-flow requests enter the
                // federation protocol; class requests stay local-only
                // (dynamic flow aggregation is intra-domain state).
                Some(&shard) if dispatch.fed.federates() && req.service == ServiceKind::PerFlow => {
                    actions.push(Action::FedForward { req, shard });
                }
                Some(&shard) => actions.push(Action::Request {
                    req,
                    shard,
                    plan: None,
                }),
                // A path this daemon does not serve: nothing to decide.
                None => actions.push(Action::NoRoute { flow: req.flow }),
            }
            Decoded::Ok
        }
        OpCode::DeleteRequest => {
            let Ok(flow) = cops::decode_delete(&frame) else {
                return Decoded::Violation;
            };
            actions.push(Action::Delete { flow });
            Decoded::Ok
        }
        OpCode::Report => {
            let Ok((macroflow, at)) = cops::decode_buffer_empty(&frame) else {
                return Decoded::Violation;
            };
            actions.push(Action::Report { macroflow, at });
            Decoded::Ok
        }
        OpCode::PeerDecide => {
            // An answer on an inbound connection is a protocol
            // violation — answers travel back on the socket the query
            // went out on, which for us is the outbound peer link.
            if cops::peer_frame_is_answer(&frame) {
                return Decoded::Violation;
            }
            let Ok(q) = cops::decode_peer_decide(&frame) else {
                return Decoded::Violation;
            };
            match dispatch
                .path_shard
                .get(usize::try_from(q.path.0).unwrap_or(usize::MAX))
            {
                Some(&shard) => actions.push(Action::PeerQuery { q, shard }),
                None => actions.push(Action::PeerQuery {
                    q,
                    shard: usize::MAX,
                }),
            }
            Decoded::Ok
        }
        OpCode::PeerCommit => match cops::decode_peer_commit(&frame) {
            Ok(commit) => {
                actions.push(Action::PeerCommitFwd { commit });
                Decoded::Ok
            }
            Err(_) => Decoded::Violation,
        },
        OpCode::PeerRelease => match cops::decode_peer_release(&frame) {
            Ok(flow) => {
                actions.push(Action::PeerReleaseFwd { flow });
                Decoded::Ok
            }
            Err(_) => Decoded::Violation,
        },
        OpCode::ReplHello => match cops::decode_repl_hello(&frame) {
            Ok(shards) => Decoded::ReplHello { shards },
            Err(_) => Decoded::Violation,
        },
        OpCode::KeepAlive => Decoded::Ok,
        // A DEC sent at a server, or replication traffic before the
        // REPL-HELLO handshake claimed the connection.
        OpCode::Decision
        | OpCode::ReplSnapshot
        | OpCode::ReplRecords
        | OpCode::ReplAck
        | OpCode::ReplRotate
        | OpCode::ReplPromote => Decoded::Violation,
    }
}

/// Decodes one frame on an established replication link. Which ops are
/// legal depends on which *side* of the link this daemon is: a standby
/// (`dispatch.replica` is `Some`) receives the primary's stream —
/// snapshot chunks, record batches, rotations, PROMOTE; a primary
/// receives only the standby's acks.
fn decode_repl(
    frame: &cops::Frame,
    dispatch: &Arc<Dispatch>,
    actions: &mut Vec<Action>,
) -> Decoded {
    let standby = dispatch.replica.is_some();
    match frame.op {
        OpCode::ReplSnapshot if standby => match cops::decode_repl_snapshot(frame) {
            Ok(snap) if (snap.shard as usize) < dispatch.jobs.len() => {
                actions.push(Action::ReplSnapshotChunk { snap });
                Decoded::Ok
            }
            _ => Decoded::Violation,
        },
        OpCode::ReplRecords if standby => match cops::decode_repl_records(frame) {
            Ok(rec) if (rec.shard as usize) < dispatch.jobs.len() => {
                actions.push(Action::ReplRecordBatch { rec });
                Decoded::Ok
            }
            _ => Decoded::Violation,
        },
        OpCode::ReplRotate if standby => match cops::decode_repl_rotate(frame) {
            Ok((shard, _epoch)) if (shard as usize) < dispatch.jobs.len() => {
                actions.push(Action::ReplRotated { shard });
                Decoded::Ok
            }
            _ => Decoded::Violation,
        },
        OpCode::ReplPromote if standby => {
            actions.push(Action::ReplPromote);
            Decoded::Ok
        }
        OpCode::ReplAck if !standby => match cops::decode_repl_ack(frame) {
            Ok(ack) if (ack.shard as usize) < dispatch.jobs.len() => {
                actions.push(Action::ReplAcked { ack });
                Decoded::Ok
            }
            _ => Decoded::Violation,
        },
        OpCode::KeepAlive => Decoded::Ok,
        _ => Decoded::Violation,
    }
}

/// Upgrades an inbound connection to the replication link after its
/// REPL-HELLO: claims the single standby slot, flips the role, and
/// attaches one [`repl::ShardSink`] per durable shard store — each
/// attach ships that shard's bootstrap (snapshot + journal prefix)
/// inside the store's critical section, so no committed record can fall
/// between the bootstrap and the live stream. `false` refuses the
/// standby (wrong role, not a durable primary, shard-count mismatch, a
/// standby already attached, or a bootstrap read failure) and closes
/// the connection.
fn attach_replica(conn: &mut Conn, dispatch: &Arc<Dispatch>, shards: u32) -> bool {
    // Only a plain inbound connection may upgrade: a second HELLO on a
    // replication link (or one from our own outbound sockets) is a
    // protocol violation. And a standby does not serve standbys.
    if conn.role != ConnRole::Edge || dispatch.replica.is_some() {
        return false;
    }
    let Some(stores) = dispatch.shard_stores() else {
        // Not durable: there is no journal to ship.
        return false;
    };
    if shards as usize != stores.len() {
        return false;
    }
    if !dispatch.repl.try_attach() {
        return false;
    }
    // The role flips *before* the sinks attach: if a bootstrap read
    // fails below, close_conn sees a Repl connection and runs the
    // fail-open path (drain gates, detach the sinks already attached).
    conn.role = ConnRole::Repl;
    dispatch.metrics.set_repl_attached(true);
    let handle = ReplyHandle(Arc::clone(&conn.shared));
    for (idx, store) in stores.iter().enumerate() {
        let shard = u32::try_from(idx).expect("shard count fits u32");
        let sink = Arc::new(repl::ShardSink::new(
            shard,
            handle.clone(),
            Arc::downgrade(dispatch),
        ));
        if store
            .attach_sink(sink, |b| {
                repl::ship_bootstrap(shard, &handle, &dispatch.metrics, &b);
            })
            .is_err()
        {
            return false;
        }
    }
    true
}

/// Grouping key for the batch decide: requests sharing a shard, an
/// interned path row, and a service class decide against the same
/// summary cell, so sorting by this key makes each group contiguous and
/// one summary read amortizes over the whole group.
fn group_key(action: &Action) -> (u64, u64) {
    match action {
        Action::Request { req, .. } => {
            let class = match req.service {
                ServiceKind::PerFlow => 0,
                ServiceKind::Class(c) => 1 + u64::from(c),
            };
            (req.path.0, class)
        }
        // Only Request actions are ever keyed.
        _ => (u64::MAX, u64::MAX),
    }
}

/// The batch phase: decide every request of the pass grouped by shard
/// and, within a shard, by `PathId` × class row — so each group costs
/// **one** summary-cell read through the shard's lock-free
/// [`bb_core::FastDecideHandle`], with no shard lock at all on the fast
/// path. Groups the handle declines (class joins, delay paths, stale
/// cells, or batching disabled) fall back to one read-lock acquisition
/// per shard per pass, as before. All actions then dispatch per
/// connection in frame order, preserving exactly the order a
/// per-connection blocking reader would have produced.
fn process_pass(pass: &mut Pass, dispatch: &Arc<Dispatch>) {
    if pass.frames > 0 {
        dispatch.metrics.record_batch_frames(pass.frames);
    }
    if pass.conns.is_empty() {
        pass.frames = 0;
        return;
    }

    let shard_count = dispatch.jobs.len();
    let mut by_shard: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shard_count];
    for (ci, (_, actions)) in pass.conns.iter().enumerate() {
        for (ai, action) in actions.iter().enumerate() {
            if let Action::Request { shard, .. } = action {
                by_shard[*shard].push((ci, ai));
            }
        }
    }
    for (shard, items) in by_shard.iter_mut().enumerate() {
        if items.is_empty() {
            continue;
        }
        // Requests a fast group couldn't serve, decided under the lock.
        let mut locked: Vec<(usize, usize)> = Vec::new();
        if let Some(fast) = dispatch.fast.as_ref().map(|f| &f[shard]) {
            // Sorting by (path, class) makes same-row requests
            // contiguous; per-connection frame order is re-imposed at
            // dispatch below, so the decide order within a pass is
            // free to choose.
            items.sort_unstable_by_key(|&(ci, ai)| group_key(&pass.conns[ci].1[ai]));
            let mut i = 0;
            while i < items.len() {
                let (ci0, ai0) = items[i];
                let key = group_key(&pass.conns[ci0].1[ai0]);
                let mut j = i + 1;
                while j < items.len() {
                    let (ci, ai) = items[j];
                    if group_key(&pass.conns[ci].1[ai]) != key {
                        break;
                    }
                    j += 1;
                }
                dispatch.metrics.record_decide_batch((j - i) as u64);
                let (path, service) = match &pass.conns[ci0].1[ai0] {
                    Action::Request { req, .. } => (req.path, req.service),
                    _ => unreachable!("only requests are grouped"),
                };
                if let Some(group) = fast.begin(path, service) {
                    for &(ci, ai) in &items[i..j] {
                        if let Action::Request { req, plan, .. } = &mut pass.conns[ci].1[ai] {
                            let t0 = Instant::now();
                            let decided = group.decide(req);
                            let decide_ns =
                                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            *plan = Some((decided, decide_ns));
                        }
                    }
                } else {
                    locked.extend_from_slice(&items[i..j]);
                }
                i = j;
            }
        } else {
            locked = std::mem::take(items);
        }
        if !locked.is_empty() {
            let guard = dispatch.shards[shard].read();
            for &(ci, ai) in &locked {
                if let Action::Request { req, plan, .. } = &mut pass.conns[ci].1[ai] {
                    let t0 = Instant::now();
                    let decided = guard.decide(req);
                    let decide_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    *plan = Some((decided, decide_ns));
                }
            }
        }
    }

    for (shared, actions) in pass.conns.drain(..) {
        let reply = ReplyHandle(shared);
        for action in actions {
            match action {
                Action::Request { shard, plan, .. } => {
                    let (plan, decide_ns) = plan.expect("batch decide filled every plan");
                    let flow = plan.request.flow;
                    let job = Job::Commit {
                        plan,
                        reply: reply.clone(),
                        enqueued: Instant::now(),
                        decide_ns,
                    };
                    if let Err(TrySendError::Full(_)) = dispatch.jobs[shard].try_send(job) {
                        shed(flow, shard, dispatch, &reply);
                    }
                }
                Action::NoRoute { flow } => {
                    dispatch.metrics.record_unrouted();
                    reply.send(cops::encode_decision_reject(flow, Reject::NoRoute));
                }
                Action::Delete { flow } => {
                    let owner = dispatch.flow_owner.read().get(&flow).copied();
                    if let Some(shard) = owner {
                        let job = Job::Delete {
                            flow,
                            reply: reply.clone(),
                        };
                        if let Err(TrySendError::Full(_)) = dispatch.jobs[shard].try_send(job) {
                            shed(flow, shard, dispatch, &reply);
                        }
                        // A teardown at the edge of a federated chain
                        // frees the downstream suffix too. Harmless
                        // for local-only (class) flows: an unknown
                        // release is a no-op at every peer.
                        dispatch.fed.forward_release(flow);
                    } else {
                        // Never admitted (or long gone): answer so the
                        // edge can tell "nothing to delete" from a lost
                        // DRQ.
                        reply.send(cops::encode_delete_unknown(flow));
                    }
                }
                Action::Report { macroflow, at } => {
                    if let Some(shard) = shard_of_macroflow(macroflow, shard_count) {
                        // Reports shed under overload are safe to drop:
                        // the contingency timer still bounds the grant.
                        let _ = dispatch.jobs[shard].try_send(Job::Report { macroflow, at });
                    }
                }
                Action::FedForward { req, shard } => {
                    fed_forward(req, shard, dispatch, &reply);
                }
                Action::PeerQuery { q, shard } => {
                    peer_query(q, shard, dispatch, &reply);
                }
                Action::PeerReply { ans } => {
                    peer_reply(ans, dispatch);
                }
                Action::PeerCommitFwd { commit } => {
                    // The commit carries the terminal's authoritative
                    // ⟨r, d⟩. It must equal what this domain booked at
                    // answer time — the chain computed both from the
                    // same accumulators. If it doesn't, the chain
                    // disagrees on what was reserved, and a booking the
                    // chain disagrees on is a booking this domain must
                    // not hold: release it (here and downstream) and
                    // count the mismatch.
                    match dispatch.fed.take_booking(commit.flow) {
                        Some((rate, delay)) if rate == commit.rate && delay == commit.delay => {
                            dispatch.fed.forward_commit(&commit);
                        }
                        Some(_) => {
                            dispatch.metrics.record_fed_commit_mismatch();
                            let owner = dispatch.flow_owner.read().get(&commit.flow).copied();
                            if let Some(shard) = owner {
                                let _ = dispatch.jobs[shard]
                                    .send(Job::FedRelease { flow: commit.flow });
                            }
                            dispatch.fed.forward_release(commit.flow);
                        }
                        // No tentative booking (released while the
                        // commit was in flight): nothing to assert
                        // against; still pass the finalization down.
                        None => dispatch.fed.forward_commit(&commit),
                    }
                }
                Action::PeerReleaseFwd { flow } => {
                    let owner = dispatch.flow_owner.read().get(&flow).copied();
                    if let Some(shard) = owner {
                        // A release must never be lost (it is the
                        // zero-residue guarantee); block through a
                        // momentarily full queue — the worker drains it
                        // independently of this loop.
                        let _ = dispatch.jobs[shard].send(Job::FedRelease { flow });
                    }
                    dispatch.fed.forward_release(flow);
                }
                Action::ReplAcked { ack } => {
                    let (released, lag) = dispatch.repl.ack(
                        ack.shard as usize,
                        WalPosition {
                            epoch: ack.epoch,
                            end_offset: ack.end_offset,
                        },
                    );
                    for (gated_reply, bytes) in released {
                        gated_reply.send(bytes);
                    }
                    dispatch.metrics.set_repl_lag(lag);
                    if ack.stamp_ns > 0 {
                        // Echoed from the records frame that carried
                        // it; zero marks bootstrap traffic whose
                        // latency is not an ack round trip.
                        dispatch.metrics.record_repl_ack_rtt_ns(
                            dispatch.monotonic_ns().saturating_sub(ack.stamp_ns),
                        );
                    }
                }
                // The standby-side handlers validate shard indices
                // again (decode_repl already did); a `false` here would
                // mean a logic error, not a wire condition — ignore.
                Action::ReplSnapshotChunk { snap } => {
                    let _ = repl::standby_snapshot(dispatch, &snap);
                }
                Action::ReplRecordBatch { rec } => {
                    let _ = repl::standby_records(dispatch, &rec, &reply);
                }
                Action::ReplRotated { shard } => {
                    let _ = repl::standby_rotate(dispatch, shard);
                }
                Action::ReplPromote => {
                    let _ = repl::promote(dispatch);
                }
            }
        }
    }
    pass.frames = 0;
}

/// Sheds one request at a full shard queue: counted, taxonomized, and
/// answered with an explicit `Overloaded` reject.
fn shed(flow: FlowId, shard: usize, dispatch: &Arc<Dispatch>, reply: &ReplyHandle) {
    dispatch.overloaded.fetch_add(1, Ordering::Relaxed);
    let m = dispatch.metrics.shard(shard);
    m.record_shed();
    // A shed is still a decision the edge sees; count it in the
    // taxonomy too so snapshot totals reconcile with DEC counts.
    m.record_reject(Reject::Overloaded);
    reply.send(cops::encode_decision_reject(flow, Reject::Overloaded));
}

/// Starts a federated admission for an edge per-flow request: park it
/// and send the chain a PEER-DEC with this domain's segment cost as
/// the initial accumulators. The local booking happens only when the
/// downstream answer comes back `Ok` — decide everywhere, commit only
/// if every segment said yes.
fn fed_forward(req: FlowRequest, shard: usize, dispatch: &Arc<Dispatch>, reply: &ReplyHandle) {
    let flow = req.flow;
    // Pre-empt duplicates here: the flat broker refuses the second REQ
    // at decide, so the fabric must too — before it can collide with
    // the parked first admission.
    if dispatch.flow_owner.read().contains_key(&flow) || dispatch.fed.is_pending(flow) {
        dispatch
            .metrics
            .shard(shard)
            .record_reject(Reject::DuplicateFlow);
        reply.send(cops::encode_decision_reject(flow, Reject::DuplicateFlow));
        return;
    }
    let Some((h, d_tot)) = dispatch.fed.path_cost(req.path) else {
        dispatch.metrics.record_unrouted();
        reply.send(cops::encode_decision_reject(flow, Reject::NoRoute));
        return;
    };
    let now = Instant::now();
    let parked = dispatch.fed.park(
        flow,
        Pending {
            origin: Origin::Client(reply.clone()),
            profile: req.profile,
            path: req.path,
            enqueued: now,
            sent_at: now,
        },
    );
    if !parked {
        dispatch
            .metrics
            .shard(shard)
            .record_reject(Reject::DuplicateFlow);
        reply.send(cops::encode_decision_reject(flow, Reject::DuplicateFlow));
        return;
    }
    let query = cops::encode_peer_decide(&PeerDecide {
        flow,
        profile: req.profile,
        d_req: req.d_req,
        path: req.path,
        h_acc: h,
        d_acc: d_tot,
    });
    if !dispatch.fed.peer_send(query) {
        // The link is already down: fail closed with nothing booked.
        let _ = dispatch.fed.resolve(flow);
        dispatch.metrics.record_peer_reject(Reject::PeerUnreachable);
        reply.send(cops::encode_decision_reject(flow, Reject::PeerUnreachable));
    }
    dispatch.metrics.set_fed_in_flight(dispatch.fed.in_flight());
}

/// Answers or forwards a PEER-DEC query from an upstream broker: add
/// this domain's segment cost to the accumulators, then either pass
/// the query downstream (mid-chain) or — at the terminal domain —
/// run the §3.1 formula once over the union totals and book
/// tentatively, answering `Ok⟨r, d⟩` up the chain.
fn peer_query(q: PeerDecide, shard: usize, dispatch: &Arc<Dispatch>, reply: &ReplyHandle) {
    let flow = q.flow;
    let refuse = |cause: Reject| {
        reply.send(cops::encode_peer_answer(&PeerAnswer::Refuse {
            flow,
            cause,
        }));
    };
    let Some((h, d_tot)) = dispatch.fed.path_cost(q.path) else {
        dispatch.metrics.record_unrouted();
        refuse(Reject::NoRoute);
        return;
    };
    let h_acc = q.h_acc + h;
    let d_acc = q.d_acc + d_tot;
    if dispatch.flow_owner.read().contains_key(&flow) || dispatch.fed.is_pending(flow) {
        refuse(Reject::DuplicateFlow);
        return;
    }
    if dispatch.fed.federates() {
        // Mid-chain: park and pass the accumulated query on down.
        let now = Instant::now();
        let parked = dispatch.fed.park(
            flow,
            Pending {
                origin: Origin::Peer(reply.clone()),
                profile: q.profile,
                path: q.path,
                enqueued: now,
                sent_at: now,
            },
        );
        if !parked {
            refuse(Reject::DuplicateFlow);
            return;
        }
        let fwd = cops::encode_peer_decide(&PeerDecide { h_acc, d_acc, ..q });
        if !dispatch.fed.peer_send(fwd) {
            let _ = dispatch.fed.resolve(flow);
            dispatch.metrics.record_peer_reject(Reject::PeerUnreachable);
            refuse(Reject::PeerUnreachable);
        }
        dispatch.metrics.set_fed_in_flight(dispatch.fed.in_flight());
        return;
    }
    // Terminal domain: the accumulators now hold the union path's
    // totals. A formula refusal books nothing anywhere; an admissible
    // rate books tentatively on the worker (decide + commit under one
    // write-lock pass, so no epoch race can void the answer we send).
    match end_to_end_rate(&q.profile, h_acc, d_acc, q.d_req) {
        Ok(rate) => {
            let job = Job::FedAdmit {
                flow,
                profile: q.profile,
                rate,
                delay: qos_units::Nanos::ZERO,
                path: q.path,
                origin: Origin::Peer(reply.clone()),
                enqueued: Instant::now(),
                rollback_downstream: false,
            };
            if let Err(TrySendError::Full(_)) = dispatch.jobs[shard].try_send(job) {
                dispatch.overloaded.fetch_add(1, Ordering::Relaxed);
                let m = dispatch.metrics.shard(shard);
                m.record_shed();
                m.record_reject(Reject::Overloaded);
                refuse(Reject::Overloaded);
            }
        }
        Err(cause) => {
            dispatch.metrics.shard(shard).record_reject(cause);
            refuse(cause);
        }
    }
}

/// Resolves a downstream answer against the parked admission it names:
/// an `Ok` books this domain's segment at the chain-computed pair (the
/// worker answers the origin after its commit — and compensates
/// downstream with a PEER-RELEASE if that commit refuses); a `Refuse`
/// relays the verdict upward unchanged, nothing booked below.
fn peer_reply(ans: PeerAnswer, dispatch: &Arc<Dispatch>) {
    let flow = match ans {
        PeerAnswer::Ok { flow, .. } | PeerAnswer::Refuse { flow, .. } => flow,
    };
    let Some(pending) = dispatch.fed.resolve(flow) else {
        return; // stale or unsolicited answer: fail-closed, ignore
    };
    dispatch.metrics.record_peer_rtt_ns(
        u64::try_from(pending.sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    dispatch.metrics.set_fed_in_flight(dispatch.fed.in_flight());
    match ans {
        PeerAnswer::Ok { rate, delay, .. } => {
            let shard = dispatch.path_shard[usize::try_from(pending.path.0).unwrap_or(usize::MAX)];
            let job = Job::FedAdmit {
                flow,
                profile: pending.profile,
                rate,
                delay,
                path: pending.path,
                origin: pending.origin,
                enqueued: pending.enqueued,
                rollback_downstream: true,
            };
            if let Err(TrySendError::Full(job)) = dispatch.jobs[shard].try_send(job) {
                // Shed — but downstream already booked tentatively:
                // compensate before refusing so nothing is left behind.
                let Job::FedAdmit { origin, .. } = job else {
                    unreachable!("the unsent job comes back unchanged");
                };
                dispatch.fed.forward_release(flow);
                dispatch.overloaded.fetch_add(1, Ordering::Relaxed);
                let m = dispatch.metrics.shard(shard);
                m.record_shed();
                m.record_reject(Reject::Overloaded);
                origin.refuse(flow, Reject::Overloaded);
            }
        }
        PeerAnswer::Refuse { cause, .. } => {
            dispatch.metrics.record_peer_reject(cause);
            pending.origin.refuse(flow, cause);
        }
    }
}

/// Writes queued replies until the queue empties or the socket fills,
/// widening interest to `BOTH` on `WouldBlock` and narrowing back to
/// `READ` once drained. Closes the connection on a write error.
fn flush_writes(
    slot: usize,
    slab: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    poller: &Poller,
    dispatch: &Arc<Dispatch>,
) {
    let mut failed = false;
    let mut blocked = false;
    {
        let Some(conn) = slab[slot].as_mut() else {
            return;
        };
        loop {
            // Clone the head (refcounted) instead of holding the queue
            // lock across a write syscall a worker might contend on.
            let Some(head) = conn.shared.out.lock().front().cloned() else {
                break;
            };
            match conn.stream.write(&head[conn.head_written..]) {
                Ok(n) if n > 0 => {
                    conn.head_written += n;
                    if conn.head_written == head.len() {
                        conn.shared.out.lock().pop_front();
                        conn.head_written = 0;
                    }
                }
                Ok(_) => {
                    failed = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    blocked = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if !failed {
            let want = if blocked {
                Interest::BOTH
            } else {
                Interest::READ
            };
            if conn.interest != want
                && poller
                    .reregister(conn.stream.as_raw_fd(), Token(slot + TOKEN_CONN_BASE), want)
                    .is_ok()
            {
                conn.interest = want;
            }
        }
    }
    if failed {
        close_conn(slot, slab, free, poller, dispatch, CloseCause::Error);
    }
}

/// Tears a connection down: marks the shared half closed (reply sends
/// become no-ops), clears its queue, deregisters, drops the socket,
/// frees the slot, and records the close under its cause.
fn close_conn(
    slot: usize,
    slab: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    poller: &Poller,
    dispatch: &Arc<Dispatch>,
    cause: CloseCause,
) {
    let Some(conn) = slab[slot].take() else {
        return;
    };
    free.push(slot);
    conn.shared.closed.store(true, Ordering::Release);
    conn.shared.out.lock().clear();
    let _ = poller.deregister(conn.stream.as_raw_fd());
    match cause {
        CloseCause::Eof => {}
        CloseCause::Error => dispatch.metrics.record_conn_error(),
        CloseCause::Idle => dispatch.metrics.record_conn_idle_closed(),
    }
    dispatch.metrics.record_conn_closed();
    if conn.role == ConnRole::Peer {
        // The downstream link died: fail every parked admission
        // closed. Nothing was booked locally for a parked flow, so
        // answering `PeerUnreachable` leaves zero residue here, and
        // the link stays down for the daemon's lifetime.
        for (flow, pending) in dispatch.fed.fail_peer() {
            dispatch.metrics.record_peer_reject(Reject::PeerUnreachable);
            pending.origin.refuse(flow, Reject::PeerUnreachable);
        }
        dispatch.metrics.set_fed_in_flight(0);
    }
    if conn.role == ConnRole::Repl && !dispatch.stop.load(Ordering::SeqCst) {
        if dispatch.replica.is_some() {
            // Standby side: the primary died. Promote — seal replay,
            // resume the clock, open the client listener.
            let _ = crate::repl::promote(dispatch);
        } else {
            // Primary side: the standby died. Fail open — availability
            // over replication: release every gated decision (the
            // journal already holds them; only the shipping stops),
            // detach the sinks, and keep serving solo.
            for (reply, bytes) in dispatch.repl.fail_open() {
                reply.send(bytes);
            }
            dispatch.detach_replica_sinks();
            dispatch.metrics.set_repl_attached(false);
            dispatch.metrics.record_repl_demotion();
            dispatch.metrics.set_repl_lag(0);
        }
    }
}

/// Builds the per-loop shared blocks and wakers for `io_threads` loops.
pub(crate) fn build_io_shared(io_threads: usize) -> (Vec<Waker>, Vec<Arc<IoShared>>) {
    let wakers: Vec<Waker> = (0..io_threads)
        .map(|_| Waker::new().expect("create waker"))
        .collect();
    let shared = wakers
        .iter()
        .map(|w| {
            Arc::new(IoShared {
                dirty: Mutex::new(Vec::new()),
                inbox: Mutex::new(Vec::new()),
                pending_listener: Mutex::new(None),
                waker: w.handle().expect("dup waker fd"),
            })
        })
        .collect();
    (wakers, shared)
}
