//! Structured startup validation: every invalid flag combination is one
//! [`StartupError`] variant with a stable exit code and a one-line
//! reason, instead of an ad-hoc panic or a silently wrong daemon.
//!
//! The daemon's modes do not all compose:
//!
//! * **Federation × durability** — federated bookings are deliberately
//!   not journaled (a WAL replay would recompute the flow's rate from
//!   local state instead of restoring the chain-computed pair; see
//!   `DESIGN.md` §4i), so a federated daemon with a data directory
//!   would recover to a state its peers disagree with.
//! * **Standby × federation** — a standby holds no bookings of its own
//!   until promotion, and promotion mid-chain would change the chain
//!   topology under live flows.
//! * **Standby × durability** — the standby's durability *is* the
//!   primary's journal; a local data directory would fork the history.
//!
//! [`validate`] is called by [`crate::BbServer::start`] (library users
//! get an `InvalidInput` io error) and by the `bb-server` binary, which
//! prints the reason to stderr and exits with [`StartupError::exit_code`].

use std::fmt;

use crate::server::ServerConfig;

/// An invalid flag combination, refused before any thread spawns or
/// socket binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupError {
    /// `--data-dir` with `--peer`: durability does not compose with
    /// federation (bookings are not journaled, `DESIGN.md` §4i).
    DurableWithPeer,
    /// `--replica-of` with `--peer`: a standby cannot federate.
    ReplicaWithPeer,
    /// `--replica-of` with `--data-dir`: a standby does not journal
    /// locally.
    ReplicaWithDurable,
}

impl StartupError {
    /// Process exit code for this refusal: uniformly `64` (BSD
    /// `EX_USAGE` — command-line usage error) so wrappers and CI can
    /// distinguish "refused flags" from a crash.
    #[must_use]
    pub fn exit_code(self) -> i32 {
        64
    }
}

impl fmt::Display for StartupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartupError::DurableWithPeer => write!(
                f,
                "--data-dir does not compose with --peer: federated bookings are not \
                 journaled, so a recovered daemon would disagree with its chain (DESIGN.md §4i)"
            ),
            StartupError::ReplicaWithPeer => write!(
                f,
                "--replica-of does not compose with --peer: a standby books nothing until \
                 promotion, and promoting mid-chain would rewire the chain under live flows"
            ),
            StartupError::ReplicaWithDurable => write!(
                f,
                "--replica-of does not compose with --data-dir: a standby's durability is \
                 the primary's journal; a local data directory would fork the history"
            ),
        }
    }
}

impl std::error::Error for StartupError {}

/// Refuses invalid mode combinations. Called before anything binds.
///
/// # Errors
///
/// One [`StartupError`] per refused combination; when several apply,
/// the replica-mode refusals win (they subsume the durable one).
pub fn validate(config: &ServerConfig) -> Result<(), StartupError> {
    if config.replica_of.is_some() && config.peer.is_some() {
        return Err(StartupError::ReplicaWithPeer);
    }
    if config.replica_of.is_some() && config.durable.is_some() {
        return Err(StartupError::ReplicaWithDurable);
    }
    if config.durable.is_some() && config.peer.is_some() {
        return Err(StartupError::DurableWithPeer);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::DurableOptions;

    fn base() -> ServerConfig {
        ServerConfig::default()
    }

    #[test]
    fn plain_config_is_valid() {
        assert_eq!(validate(&base()), Ok(()));
    }

    #[test]
    fn each_mode_alone_is_valid() {
        let mut durable = base();
        durable.durable = Some(DurableOptions::default());
        assert_eq!(validate(&durable), Ok(()));

        let mut federated = base();
        federated.peer = Some("127.0.0.1:9".into());
        assert_eq!(validate(&federated), Ok(()));

        let mut standby = base();
        standby.replica_of = Some("127.0.0.1:9".into());
        assert_eq!(validate(&standby), Ok(()));
    }

    #[test]
    fn durable_with_peer_is_refused() {
        let mut config = base();
        config.durable = Some(DurableOptions::default());
        config.peer = Some("127.0.0.1:9".into());
        assert_eq!(validate(&config), Err(StartupError::DurableWithPeer));
    }

    #[test]
    fn replica_with_peer_is_refused() {
        let mut config = base();
        config.replica_of = Some("127.0.0.1:9".into());
        config.peer = Some("127.0.0.1:9".into());
        assert_eq!(validate(&config), Err(StartupError::ReplicaWithPeer));
    }

    #[test]
    fn replica_with_durable_is_refused() {
        let mut config = base();
        config.replica_of = Some("127.0.0.1:9".into());
        config.durable = Some(DurableOptions::default());
        assert_eq!(validate(&config), Err(StartupError::ReplicaWithDurable));
    }

    #[test]
    fn exit_code_is_ex_usage_for_every_variant() {
        for err in [
            StartupError::DurableWithPeer,
            StartupError::ReplicaWithPeer,
            StartupError::ReplicaWithDurable,
        ] {
            assert_eq!(err.exit_code(), 64);
            // Every refusal renders a non-empty one-line reason.
            assert!(!err.to_string().is_empty());
            assert!(!err.to_string().contains('\n'));
        }
    }
}
