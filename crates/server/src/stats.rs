//! The daemon's side telemetry endpoint, plus the matching client.
//!
//! A second TCP listener — separate from the COPS port, so scraping
//! never competes with admission traffic for reader threads — answers
//! minimal HTTP/1.0 `GET`s:
//!
//! * `GET /stats` → `application/json`, a [`StatsSnapshot`]: the full
//!   [`MetricsSnapshot`] (per-shard counters with the rejection
//!   taxonomy, decision/setup latency histograms, queue gauges) plus
//!   the domain-wide class directory;
//! * `GET /metrics` → `text/plain`, Prometheus text exposition of the
//!   same snapshot.
//!
//! The protocol is deliberately the lowest common denominator: one
//! request per connection, `Connection: close` semantics, so `curl`,
//! a Prometheus scraper, and the ten-line [`fetch_stats`] client all
//! work against it unmodified.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

use bb_telemetry::registry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

use crate::server::ClassUsage;

/// Point-in-time view served by `GET /stats`: live metrics plus the
/// cross-shard class directory (summed over shards).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Counter, gauge, and histogram state.
    pub metrics: MetricsSnapshot,
    /// Domain-wide class usage, `(class id, usage)` per offered class
    /// with at least one past member.
    pub classes: Vec<(u32, ClassUsage)>,
}

/// Upper bound on an inbound stats request (method + path + headers).
const MAX_REQUEST: usize = 4096;

/// Serves stats requests until `stop` flips. One connection at a time:
/// responses are small, sources are few (a scraper, a bench poller),
/// and serial service keeps the endpoint from ever amplifying load.
pub(crate) fn stats_loop(
    listener: &TcpListener,
    stop: &std::sync::atomic::AtomicBool,
    snapshot: &(dyn Fn() -> StatsSnapshot + Sync),
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = serve_one(stream, snapshot);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    snapshot: &(dyn Fn() -> StatsSnapshot + Sync),
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut request = Vec::new();
    let mut chunk = [0u8; 512];
    // Read until the header terminator; tolerate bare "GET /x\n" probes.
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&chunk[..n]);
        if request.windows(4).any(|w| w == b"\r\n\r\n") || request.contains(&b'\n') {
            break;
        }
        if request.len() > MAX_REQUEST {
            break;
        }
    }
    let first_line = String::from_utf8_lossy(&request);
    let path = first_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_default()
        .to_string();

    let (status, content_type, body) = match path.as_str() {
        "/stats" | "/stats.json" => {
            let body = serde::json::to_string_pretty(&snapshot());
            ("200 OK", "application/json", body)
        }
        "/metrics" => {
            let body = bb_telemetry::prometheus(&snapshot().metrics);
            ("200 OK", "text/plain; version=0.0.4", body)
        }
        _ => (
            "404 Not Found",
            "text/plain",
            "unknown path; try /stats or /metrics\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn http_get(addr: &SocketAddr, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no HTTP header terminator"))?;
    if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "stats endpoint answered: {}",
                head.lines().next().unwrap_or("")
            ),
        ));
    }
    Ok(body.to_string())
}

/// Fetches and parses `GET /stats` from a daemon's telemetry endpoint.
///
/// # Errors
///
/// I/O errors, non-200 responses, or malformed JSON (as
/// [`io::ErrorKind::InvalidData`]).
pub fn fetch_stats(addr: &SocketAddr) -> io::Result<StatsSnapshot> {
    let body = http_get(addr, "/stats")?;
    serde::json::from_str(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Fetches the Prometheus text exposition from `GET /metrics`.
///
/// # Errors
///
/// I/O errors or non-200 responses.
pub fn fetch_metrics_text(addr: &SocketAddr) -> io::Result<String> {
    http_get(addr, "/metrics")
}
