//! The concurrent bandwidth-broker daemon.
//!
//! Architecture (one process, all threads named for debuggability):
//!
//! ```text
//!  edge routers ──TCP──▶ io event loops (netpoll/epoll: accept,
//!      (10k+ conns)      framed decode, batched decide, DEC writes)
//!                                │        ▲
//!              bounded crossbeam │        │ reply queues + waker
//!              job queues (one   ▼        │ (ReplyHandle)
//!              per shard)   shard worker ─┘
//!                           (owns a BrokerShard)
//! ```
//!
//! * **IO loops** (`crate::conn`) own the listener and all sockets:
//!   `io_threads` event loops multiplex every connection over
//!   edge-triggered readiness ([`netpoll`]), so tens of thousands of
//!   mostly-idle edges cost fds, not threads. Each readiness pass frames
//!   the COPS stream ([`crate::frame::FrameReader`]), decodes each
//!   message, and runs the **decide phase batched per shard**:
//!   [`BrokerShard::decide`] is read-only, so one read-lock acquisition
//!   serves every connection that became ready together. The resulting
//!   epoch-stamped plan (admit *or* reject — a reject must travel the
//!   queue too, or it would reorder around already-queued releases and
//!   break serial equivalence) is enqueued to the owning shard in
//!   per-connection frame order. Path → shard is a lock-free table
//!   lookup; flow → shard (for `DRQ`) reads a [`RwLock`]-guarded map the
//!   workers maintain; macroflow → shard (for `RPT`) is pure arithmetic
//!   on the id-space partition. Connections sitting mid-frame past the
//!   idle timeout are closed (slow-loris defense).
//! * **Workers** serialize the **commit phase**: one worker per shard
//!   takes the write lock per batch, revalidates each plan's epoch
//!   stamp (stale plans are re-decided by the broker, counted as
//!   retries/aborts), and applies the bookkeeping. Decisions are
//!   encoded and handed back through the connection's reply queue,
//!   waking its io loop.
//! * **Backpressure** is explicit: shard queues are bounded, and a full
//!   queue turns the request into an immediate `DEC` reject with the
//!   [`bb_core::signaling::Reject::Overloaded`] cause — the edge learns it was shed, rather
//!   than the daemon buffering without bound or silently dropping.
//! * **Shutdown** is clean and total-ordered: stop flag → io loops
//!   (woken, they tear down their connections) → workers, which drain
//!   their queues so the final [`ServerReport`] is exact.
//!
//! The broker itself stays a passive, explicit-time state machine; the
//! daemon is the clock owner and stamps each job with the elapsed time
//! since start.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::RwLock;
use qos_units::{Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

use bb_core::admission::plan::AdmissionPlan;
use bb_core::broker::BrokerConfig;
use bb_core::cops::{self, PeerAnswer, PeerCommit};
use bb_core::mib::{LinkRef, PathId};
use bb_core::persist::BrokerImage;
use bb_core::shard::{build_shards, plan_shards, BrokerShard, FastDecideHandle};
use bb_core::signaling::ServiceKind;
use bb_durable::{replay, ShardStore, WalPosition, WalRecord};
use bb_telemetry::{MetricsRegistry, ShardMetrics};
use bytes::Bytes;
use netsim::topology::{LinkId, Topology};

use crate::conn::{self, ConnRole, ReplyHandle};
use crate::fed::{Federation, Origin};
use crate::repl::{self, record_now, ReplState, ReplicaState};
use crate::stats::{stats_loop, StatsSnapshot};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shard worker threads (also the number of broker shards).
    pub workers: usize,
    /// Bound on each shard's job queue; beyond it requests are shed
    /// with [`bb_core::signaling::Reject::Overloaded`].
    pub queue_depth: usize,
    /// IO event loops multiplexing all connections. Loop 0 owns the
    /// listener; accepted sockets distribute round-robin.
    pub io_threads: usize,
    /// Close a connection that sits with a *partial* COPS frame
    /// buffered for this long (slow-loris defense). `None` disables
    /// idle closing; connections idle at a frame boundary are never
    /// closed.
    pub idle_timeout: Option<Duration>,
    /// Broker configuration applied to every shard.
    pub broker: BrokerConfig,
    /// Address for the side telemetry endpoint (`GET /stats`,
    /// `GET /metrics`); `None` disables it. Use port 0 for an ephemeral
    /// port, resolved via [`BbServer::stats_addr`].
    pub stats_addr: Option<String>,
    /// Durability: journal every committed mutation and snapshot the
    /// MIBs under a data directory, recovering from it at startup.
    /// `None` keeps the daemon purely in-memory.
    pub durable: Option<DurableOptions>,
    /// Batched lock-free decide: group each readiness pass's requests
    /// by `PathId` × class and decide per-flow rate-based groups through
    /// a [`bb_core::FastDecideHandle`] — one seqlock summary read per
    /// group, no shard read lock. Off forces every decide under the
    /// shard read lock (the pre-batching behaviour, kept as a CI
    /// comparison axis and an escape hatch).
    pub batched_decide: bool,
    /// Downstream peer domain (`host:port`) for broker-to-broker
    /// federation. When set, per-flow edge requests run the
    /// decide-everywhere / commit-if-all-said-yes protocol over the
    /// peered chain instead of being admitted locally; the daemon
    /// dials the peer at startup (retrying briefly so a chain can be
    /// launched terminal-first). `None` keeps the daemon single-domain
    /// — it still *answers* PEER-DEC queries, acting as the terminal
    /// domain of any chain pointed at it. Federation composes with
    /// everything except durability: federated bookings are not
    /// journaled (see `DESIGN.md` §4i).
    pub peer: Option<String>,
    /// Start as a warm standby replicating from the primary daemon at
    /// `host:port`. The standby dials the primary, bootstraps from its
    /// latest snapshot, tails the journal continuously into a live
    /// broker image, and accepts **no** client connections until
    /// promoted — by primary death, a `REPL-PROMOTE` frame, or
    /// [`BbServer::promote`] — at which point it binds the configured
    /// client address and serves from the replicated state. Excludes
    /// both `durable` (the standby's durability *is* the primary's
    /// journal) and `peer` (see [`crate::startup`]).
    pub replica_of: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 1024,
            io_threads: 2,
            idle_timeout: None,
            broker: BrokerConfig::default(),
            stats_addr: None,
            durable: None,
            batched_decide: true,
            peer: None,
            replica_of: None,
        }
    }
}

/// Where and how the daemon persists its state (see [`bb_durable`]).
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Data directory; the daemon keeps one `shard-<i>` subdirectory of
    /// journals and snapshots per shard. Created if absent; an existing
    /// directory is recovered from before the listener accepts.
    pub data_dir: PathBuf,
    /// Group-commit interval: a dedicated flusher thread fsyncs every
    /// shard's journal this often. Acknowledgements are not gated on
    /// the fsync, so a crash can lose at most this window of committed
    /// decisions — they surface at recovery as a torn journal tail.
    pub wal_flush: Duration,
    /// Rotate the journal — snapshot the MIBs and start a new epoch —
    /// after this many appended records.
    pub snapshot_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            data_dir: PathBuf::from("bb-data"),
            wal_flush: Duration::from_millis(5),
            snapshot_every: 10_000,
        }
    }
}

/// Cross-shard view of one service class's aggregate state, maintained
/// by the workers under a [`RwLock`] — the only mutable state shared
/// between shards, used for domain-wide monitoring (class joins and
/// reserved bandwidth span shards, which own disjoint paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClassUsage {
    /// Microflows currently aggregated under the class, domain-wide.
    pub members: u64,
    /// Total reserved macroflow bandwidth (bps), domain-wide.
    pub reserved_bps: u64,
}

/// Per-class, per-shard contributions; summed into [`ClassUsage`] for
/// reporting. Keyed by class id; each shard writes only its own slot.
type ClassDirectory = HashMap<u32, Vec<ClassUsage>>;

fn class_totals(dir: &ClassDirectory) -> Vec<(u32, ClassUsage)> {
    let mut v: Vec<(u32, ClassUsage)> = dir
        .iter()
        .map(|(class, shards)| {
            let total = shards
                .iter()
                .fold(ClassUsage::default(), |a, s| ClassUsage {
                    members: a.members + s.members,
                    reserved_bps: a.reserved_bps + s.reserved_bps,
                });
            (*class, total)
        })
        .collect();
    v.sort_by_key(|(class, _)| *class);
    v
}

/// Daemon threads that panicked instead of exiting cleanly, tallied at
/// shutdown so one poisoned connection or worker degrades the final
/// accounting instead of aborting it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ThreadFailures {
    /// Unused since the event-loop rewrite (the accepting loop is io
    /// loop 0, counted under `readers`); kept so the report schema
    /// stays stable.
    pub accept: u64,
    /// IO event loops that panicked (their connections are lost; the
    /// other loops and the workers keep serving).
    pub readers: u64,
    /// Shard workers that panicked. Their shard's counters survive in
    /// the report totals — the shard lives behind a shared handle, not
    /// inside the worker — but jobs queued after the panic went
    /// unserved.
    pub workers: u64,
    /// The telemetry endpoint thread panicked.
    pub stats: u64,
    /// The WAL flusher thread panicked (group commits stopped; the
    /// final shutdown snapshot still captures everything applied).
    pub flusher: u64,
}

impl ThreadFailures {
    /// True when every daemon thread exited cleanly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.accept == 0
            && self.readers == 0
            && self.workers == 0
            && self.stats == 0
            && self.flusher == 0
    }
}

/// Final accounting returned by [`BbServer::shutdown`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServerReport {
    /// Admission requests that reached a broker shard.
    pub requested: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected by admission control (any cause but overload).
    pub rejected: u64,
    /// Requests shed at the queue with [`bb_core::signaling::Reject::Overloaded`].
    pub overloaded: u64,
    /// Flows released via `DRQ`.
    pub released: u64,
    /// Flow records still resident across all shards (state footprint).
    pub resident_flows: u64,
    /// Per-shard `(requested, admitted)` pairs.
    pub per_shard: Vec<(u64, u64)>,
    /// Domain-wide class usage at shutdown.
    pub classes: Vec<(u32, ClassUsage)>,
    /// Threads that panicked during the daemon's lifetime.
    pub failures: ThreadFailures,
}

/// One unit of work for a shard worker.
// One Commit is built per admission request; boxing the plan to shrink
// the enum would put a heap allocation on that hot path for the sake of
// the rarer Delete/Report variants.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Job {
    /// Commit (or refuse) a plan the io loop already decided.
    Commit {
        plan: AdmissionPlan,
        reply: ReplyHandle,
        /// Dispatch time, for the end-to-end setup-latency histogram.
        enqueued: Instant,
        /// Decide-phase latency measured on the io loop.
        decide_ns: u64,
    },
    Delete {
        flow: FlowId,
        reply: ReplyHandle,
    },
    Report {
        macroflow: FlowId,
        at: Time,
    },
    /// Book one domain's segment of a federated admission at the exact
    /// ⟨rate, delay⟩ pair the chain computed, and answer the origin.
    /// Unlike `Commit`, decide and commit both run here, atomically
    /// under the worker's write lock — the answer sent upstream is a
    /// promise, so no epoch race may void it after the fact.
    FedAdmit {
        flow: FlowId,
        profile: TrafficProfile,
        rate: Rate,
        delay: Nanos,
        path: PathId,
        origin: Origin,
        /// When the triggering frame arrived, for the setup histogram.
        enqueued: Instant,
        /// True when downstream domains already hold tentative
        /// bookings — a local refusal must send PEER-RELEASE down
        /// before refusing up, or residue survives the abort.
        rollback_downstream: bool,
    },
    /// Free a federated flow's local booking (PEER-RELEASE from
    /// upstream). No reply: the release is propagated, not answered.
    FedRelease {
        flow: FlowId,
    },
    /// Standby only: apply one replicated journal record to the live
    /// image through the same replay entry points recovery uses,
    /// maintaining the derived flow → shard map so a promoted standby
    /// serves `DRQ`s correctly.
    ReplApply {
        record: WalRecord,
    },
    /// Standby only: restore a shipped bootstrap snapshot.
    ReplRestore {
        image: Box<BrokerImage>,
    },
    /// Administratively mark a topology link down (or back up) in this
    /// shard's broker image. Down links admit nothing new while
    /// existing reservations ride out the outage. Transient by design —
    /// not journaled, so a recovered daemon starts with every link up.
    SetLinkState {
        link: LinkRef,
        up: bool,
    },
    /// Drain barrier: answered once every job queued before it has been
    /// applied. Promotion uses one per shard to seal the replay.
    Barrier {
        done: Sender<()>,
    },
}

impl Job {
    /// The flow a panicking worker must unmap before unwinding, if the
    /// job concerns one.
    fn flow(&self) -> Option<FlowId> {
        match self {
            Job::Commit { plan, .. } => Some(plan.request.flow),
            Job::Delete { flow, .. } => Some(*flow),
            Job::Report { .. } | Job::ReplApply { .. } | Job::ReplRestore { .. } => None,
            Job::FedAdmit { flow, .. } | Job::FedRelease { flow } => Some(*flow),
            Job::SetLinkState { .. } | Job::Barrier { .. } => None,
        }
    }
}

/// Immutable dispatch state shared by the io loops and workers.
pub(crate) struct Dispatch {
    /// Global path index → shard.
    pub(crate) path_shard: Vec<usize>,
    /// The broker shards. IO loops take the read lock to run the decide
    /// phase (batched per readiness pass); each shard's single worker
    /// takes the write lock per commit batch, so commits serialize per
    /// shard while decides never block each other.
    pub(crate) shards: Vec<Arc<RwLock<BrokerShard>>>,
    /// Shard job queues.
    pub(crate) jobs: Vec<Sender<Job>>,
    /// Flow → owning shard (maintained by workers; read on `DRQ`).
    pub(crate) flow_owner: RwLock<HashMap<FlowId, usize>>,
    /// Requests shed due to full queues.
    pub(crate) overloaded: AtomicU64,
    /// Flows released (DRQ) across all shards.
    released: AtomicU64,
    /// Cross-shard class usage.
    classes: RwLock<ClassDirectory>,
    /// Per-shard lock-free decide handles sharing each shard's seqlock
    /// summary cells and epoch lane; `None` when batched decide is
    /// disabled. Built after recovery over the full route set, so
    /// every served path is in view.
    pub(crate) fast: Option<Vec<Arc<FastDecideHandle>>>,
    /// Broker-to-broker federation state: the outbound peer link, the
    /// parked cross-domain admissions, and per-path segment costs.
    pub(crate) fed: Federation,
    /// Primary-side replication state: the standby slot, ack
    /// watermarks, and the `DEC`s parked on them.
    pub(crate) repl: ReplState,
    /// Standby-side state; `Some` only under `--replica-of`.
    pub(crate) replica: Option<ReplicaState>,
    /// The io loops' shared blocks, for promotion's deferred-listener
    /// hand-off to loop 0. Set once in [`BbServer::start`] before any
    /// io loop spawns.
    pub(crate) io_shared: OnceLock<Vec<Arc<conn::IoShared>>>,
    /// Live telemetry, updated lock-free by workers and the io loops.
    pub(crate) metrics: MetricsRegistry,
    pub(crate) stop: AtomicBool,
    started: Instant,
    /// Per-shard durable stores; `None` without durability.
    stores: Option<Vec<Arc<ShardStore>>>,
    /// Journal records between snapshots (rotation threshold).
    snapshot_every: u64,
    /// Clock offset: the recovered (or, at promotion, replicated)
    /// state's latest observed timestamp. The daemon's clock resumes
    /// from here so post-restart journal records stay monotone with
    /// everything replayed before them. Atomic because promotion
    /// advances it on a live standby.
    base_nanos: AtomicU64,
}

impl Dispatch {
    fn now(&self) -> Time {
        let elapsed = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Time::from_nanos(
            self.base_nanos
                .load(Ordering::Relaxed)
                .saturating_add(elapsed),
        )
    }

    /// Monotonic nanoseconds since daemon start — the stateless RTT
    /// stamp embedded in `REPL-RECORDS` and echoed back in acks.
    pub(crate) fn monotonic_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Advances the clock base so [`Dispatch::now`] never runs behind
    /// `floor_nanos` — promotion's clock hand-off (a forward jump, the
    /// same discontinuity recovery produces).
    pub(crate) fn resume_clock_at(&self, floor_nanos: u64) {
        self.base_nanos.fetch_max(floor_nanos, Ordering::SeqCst);
    }

    fn store(&self, idx: usize) -> Option<&ShardStore> {
        self.stores.as_deref().map(|s| &*s[idx])
    }

    /// The per-shard durable stores (the replication attach path needs
    /// them from the io loops).
    pub(crate) fn shard_stores(&self) -> Option<&[Arc<ShardStore>]> {
        self.stores.as_deref()
    }

    /// Detaches every shard's replication sink (standby death).
    pub(crate) fn detach_replica_sinks(&self) {
        if let Some(stores) = self.stores.as_deref() {
            for store in stores {
                store.detach_sink();
            }
        }
    }

    /// Sends one decision's reply, gating it on the standby's ack when
    /// the decision was journaled (`pos`) and a standby is attached —
    /// the semi-synchronous half of the replication protocol.
    pub(crate) fn gate_send(
        &self,
        shard: usize,
        pos: Option<WalPosition>,
        reply: &ReplyHandle,
        bytes: Bytes,
    ) {
        let send_now = match pos {
            Some(pos) => self.repl.gate(shard, pos, reply, bytes),
            None => Some(bytes),
        };
        if let Some(bytes) = send_now {
            reply.send(bytes);
        }
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        // Refresh the RSS gauge at snapshot time: stats consumers (the
        // scenario driver's memory envelope above all) want the value
        // as of the poll, and polls are far too rare to matter.
        self.metrics.set_rss_bytes(process_rss_bytes().unwrap_or(0));
        StatsSnapshot {
            metrics: self.metrics.snapshot(),
            classes: class_totals(&self.classes.read()),
        }
    }
}

/// This process's resident-set size in bytes, from `/proc/self/status`
/// (`VmRSS` is reported in kB). `None` where /proc is unavailable.
#[must_use]
pub fn process_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A running daemon. Dropping it without [`BbServer::shutdown`] detaches
/// the threads; call `shutdown` for a clean stop and final report.
pub struct BbServer {
    addr: SocketAddr,
    stats_addr: Option<SocketAddr>,
    dispatch: Arc<Dispatch>,
    io_handles: Vec<JoinHandle<()>>,
    io_shared: Vec<Arc<conn::IoShared>>,
    stats_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    flusher_handle: Option<JoinHandle<()>>,
}

impl BbServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// daemon over the given routed topology: route `i` is served under
    /// the global path id `i`, sharded by pod across `config.workers`
    /// workers.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    ///
    /// # Panics
    ///
    /// Panics when the pod partition is not link-disjoint (see
    /// [`build_shards`]) or `config.workers` is zero.
    pub fn start(
        addr: &str,
        topo: &Topology,
        routes: &[Vec<LinkId>],
        config: &ServerConfig,
    ) -> io::Result<Self> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.io_threads > 0, "need at least one io loop");
        if let Err(e) = crate::startup::validate(config) {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string()));
        }
        // A standby defers the client listener to promotion: until then
        // it must accept no client connection. Its advertised address is
        // the configured one, resolved; the live (possibly ephemeral)
        // address appears via `promoted_addr` after promotion.
        let client_addr = addr.to_string();
        let listener = if config.replica_of.is_some() {
            None
        } else {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Some(l)
        };
        let addr = match &listener {
            Some(l) => l.local_addr()?,
            None => addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unresolvable addr {addr}"),
                )
            })?,
        };

        let plan = plan_shards(topo, routes, config.workers);
        let shards: Vec<Arc<RwLock<BrokerShard>>> =
            build_shards(topo, &config.broker, routes, config.workers)
                .into_iter()
                .map(|s| Arc::new(RwLock::new(s)))
                .collect();
        let mut path_shard = vec![0usize; routes.len()];
        for (shard, members) in plan.iter().enumerate() {
            for &i in members {
                path_shard[i] = shard;
            }
        }

        // Recovery happens here — after the shards exist, before any
        // thread can serve a request — so a recovering daemon never
        // mixes replayed and live mutations. Each shard recovers
        // independently: load its latest snapshot, replay its journal
        // tail through the broker's monolithic entry points, then open
        // a fresh epoch (snapshot of the recovered state + empty
        // journal) so a crash during recovery can never eat state.
        let mut stores = None;
        let mut base_nanos = 0u64;
        let mut recovered_owners: HashMap<FlowId, usize> = HashMap::new();
        let mut recovery_replayed = vec![0u64; shards.len()];
        if let Some(opts) = &config.durable {
            let mut opened = Vec::with_capacity(shards.len());
            for (idx, shard) in shards.iter().enumerate() {
                let dir = opts.data_dir.join(format!("shard-{idx}"));
                let (store, outcome) = ShardStore::open(&dir).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shard {idx} recovery: {e}"),
                    )
                })?;
                for note in &outcome.notes {
                    eprintln!("bb-server: shard {idx}: {note}");
                }
                let mut guard = shard.write();
                let summary = replay(&mut guard, &outcome);
                recovery_replayed[idx] = summary.total();
                let as_of = outcome.max_now.unwrap_or(Time::ZERO);
                base_nanos = base_nanos.max(as_of.as_nanos());
                store
                    .commit_recovery(&guard.export_image(), as_of)
                    .map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("shard {idx} recovery commit: {e}"),
                        )
                    })?;
                // The flow → shard map is derived state; rebuild it from
                // the recovered MIBs.
                for (flow, _) in guard.broker().flows().iter() {
                    recovered_owners.insert(*flow, idx);
                }
                opened.push(Arc::new(store));
            }
            stores = Some(opened);
        }

        // Warm every shard's summary cells (a chunked sweep over the
        // dense path rows) and build the lock-free decide handles —
        // after recovery, which invalidated the cells, and before any
        // io loop exists, so the first wave of decides hits warm cells.
        let fast = config.batched_decide.then(|| {
            shards
                .iter()
                .map(|s| {
                    let guard = s.read();
                    guard.broker().warm_summaries();
                    Arc::new(guard.fast_handle())
                })
                .collect::<Vec<_>>()
        });

        // Federation: each global path's segment cost here (what this
        // domain adds to a PEER-DEC's accumulators), and the dialed
        // downstream link. Dialing retries briefly so a chain can be
        // launched terminal-first without orchestration races.
        let fed_paths: Vec<(u64, Nanos)> = (0..routes.len())
            .map(|i| {
                let path = PathId(i as u64);
                shards[path_shard[i]]
                    .read()
                    .path_cost(path)
                    .expect("every route is served by its planned shard")
            })
            .collect();
        let fed = Federation::new(fed_paths, config.peer.is_some());
        // One outbound dial at most: the federation peer (Peer role) or
        // the replication primary (Repl role) — startup::validate
        // refused the combination already.
        let mut peer_stream = match (&config.peer, &config.replica_of) {
            (Some(peer_addr), None) => Some((dial_peer(peer_addr)?, ConnRole::Peer)),
            (None, Some(primary)) => Some((dial_peer(primary)?, ConnRole::Repl)),
            (None, None) => None,
            (Some(_), Some(_)) => unreachable!("validate refused --peer with --replica-of"),
        };

        let mut jobs = Vec::new();
        let mut worker_rxs = Vec::new();
        for _ in 0..shards.len() {
            let (tx, rx) = channel::bounded::<Job>(config.queue_depth);
            jobs.push(tx);
            worker_rxs.push(rx);
        }

        let stats_listener = match &config.stats_addr {
            Some(a) => {
                let l = TcpListener::bind(a)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let stats_addr = match &stats_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let shard_count = shards.len();
        let dispatch = Arc::new(Dispatch {
            path_shard,
            shards,
            jobs,
            flow_owner: RwLock::new(recovered_owners),
            overloaded: AtomicU64::new(0),
            released: AtomicU64::new(0),
            classes: RwLock::new(ClassDirectory::new()),
            fast,
            fed,
            repl: ReplState::new(shard_count),
            replica: config
                .replica_of
                .as_ref()
                .map(|_| ReplicaState::new(client_addr, shard_count)),
            io_shared: OnceLock::new(),
            metrics: MetricsRegistry::new(shard_count),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            stores,
            snapshot_every: config
                .durable
                .as_ref()
                .map_or(u64::MAX, |o| o.snapshot_every.max(1)),
            base_nanos: AtomicU64::new(base_nanos),
        });

        // Surface what recovery did and rebuild the remaining derived
        // state (class directory, telemetry gauges) from the restored
        // MIBs, still before any serving thread exists.
        if dispatch.stores.is_some() {
            for (idx, &replayed) in recovery_replayed.iter().enumerate() {
                let m = dispatch.metrics.shard(idx);
                m.set_recovery_replayed(replayed);
                if let Some(store) = dispatch.store(idx) {
                    m.set_snapshot_bytes(store.snapshot_bytes());
                }
                let guard = dispatch.shards[idx].read();
                refresh_class_usage(&guard, &dispatch);
                mirror_pipeline_gauges(&guard, &dispatch);
            }
        }

        let flusher_handle = dispatch.stores.as_ref().map(|stores| {
            let stores = stores.clone();
            let dispatch = Arc::clone(&dispatch);
            let interval = config
                .durable
                .as_ref()
                .expect("stores imply durable options")
                .wal_flush;
            std::thread::Builder::new()
                .name("bb-wal-flush".into())
                .spawn(move || flusher_loop(&stores, interval, &dispatch))
                .expect("spawn wal flusher")
        });

        let stats_handle = stats_listener.map(|listener| {
            let dispatch = Arc::clone(&dispatch);
            std::thread::Builder::new()
                .name("bb-stats".into())
                .spawn(move || {
                    let snapshot = || dispatch.stats_snapshot();
                    stats_loop(&listener, &dispatch.stop, &snapshot);
                })
                .expect("spawn stats thread")
        });

        let worker_handles = worker_rxs
            .into_iter()
            .enumerate()
            .map(|(idx, rx)| {
                let dispatch = Arc::clone(&dispatch);
                let shard = Arc::clone(&dispatch.shards[idx]);
                std::thread::Builder::new()
                    .name(format!("bb-shard-{idx}"))
                    .spawn(move || worker_loop(&shard, idx, &rx, &dispatch))
                    .expect("spawn shard worker")
            })
            .collect();

        let (wakers, io_shared) = conn::build_io_shared(config.io_threads);
        // Promotion hands the deferred listener to loop 0 through this;
        // set before any io loop exists so no promote call can miss it.
        let _ = dispatch.io_shared.set(io_shared.clone());
        let idle_timeout = config.idle_timeout;
        let mut listener = listener;
        let io_handles = wakers
            .into_iter()
            .enumerate()
            .map(|(idx, waker)| {
                let dispatch = Arc::clone(&dispatch);
                let shared = Arc::clone(&io_shared[idx]);
                let peers = io_shared.clone();
                // Loop 0 owns the listener (and the outbound peer
                // link, installed before its first accept) and
                // distributes accepts.
                let listener = listener.take();
                let peer = peer_stream.take();
                std::thread::Builder::new()
                    .name(format!("bb-io-{idx}"))
                    .spawn(move || {
                        conn::io_loop(
                            idx,
                            listener,
                            peer,
                            waker,
                            shared,
                            peers,
                            dispatch,
                            idle_timeout,
                        );
                    })
                    .expect("spawn io loop")
            })
            .collect();

        Ok(BbServer {
            addr,
            stats_addr,
            dispatch,
            io_handles,
            io_shared,
            stats_handle,
            worker_handles,
            flusher_handle,
        })
    }

    /// The bound address (resolves ephemeral ports). On a standby this
    /// is the *configured* client address — nothing listens on it until
    /// promotion; see [`BbServer::promoted_addr`] for the live one.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True for a daemon started with [`ServerConfig::replica_of`].
    #[must_use]
    pub fn is_replica(&self) -> bool {
        self.dispatch.replica.is_some()
    }

    /// Promotes a standby to primary: seals the replay (drains every
    /// apply queue), resumes the clock past the replicated history,
    /// binds the deferred client listener, and starts accepting.
    /// Idempotent; returns the promoted listener's address, or `None`
    /// on a daemon that is not a standby (or a failed bind).
    pub fn promote(&self) -> Option<SocketAddr> {
        repl::promote(&self.dispatch)
    }

    /// The promoted client listener's address, once a standby has been
    /// promoted (resolves an ephemeral configured port).
    #[must_use]
    pub fn promoted_addr(&self) -> Option<SocketAddr> {
        self.dispatch
            .replica
            .as_ref()
            .and_then(ReplicaState::bound_addr)
    }

    /// True on a standby that has been promoted to serving.
    #[must_use]
    pub fn is_promoted(&self) -> bool {
        self.dispatch
            .replica
            .as_ref()
            .is_some_and(ReplicaState::is_promoted)
    }

    /// True on a primary while a standby is attached and journal
    /// records are being gated on its acks. Failover harnesses wait on
    /// this before killing the primary (a kill during bootstrap tests
    /// nothing).
    #[must_use]
    pub fn replication_attached(&self) -> bool {
        self.dispatch.repl.is_attached()
    }

    /// The telemetry endpoint's bound address, when one is configured.
    #[must_use]
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.stats_addr
    }

    /// Snapshot of the cross-shard class directory (summed over shards).
    #[must_use]
    pub fn class_usage(&self) -> Vec<(u32, ClassUsage)> {
        class_totals(&self.dispatch.classes.read())
    }

    /// Administratively fails (or restores) a topology link across every
    /// shard and waits for the change to apply. While a link is down,
    /// every path crossing it stops admitting ([`bb_core::signaling::Reject::Bandwidth`]);
    /// existing reservations ride out the outage and still release.
    /// Plans decided against the pre-flip state recommit through the
    /// epoch machinery, so no stale admit slips past the outage.
    ///
    /// Every shard holds the full topology (link ids are global), so the
    /// flip is broadcast; only the shard whose paths cross the link
    /// bumps any epoch. Blocks until each shard has drained past the
    /// job — on return the new state governs all later decisions.
    pub fn set_link_state(&self, link: LinkId, up: bool) {
        let link = LinkRef(link.0);
        let mut barriers = Vec::with_capacity(self.dispatch.jobs.len());
        for tx in &self.dispatch.jobs {
            if tx.send(Job::SetLinkState { link, up }).is_err() {
                continue; // worker gone (shutdown race); nothing to wait on
            }
            let (done_tx, done_rx) = channel::bounded::<()>(1);
            if tx.send(Job::Barrier { done: done_tx }).is_ok() {
                barriers.push(done_rx);
            }
        }
        for rx in barriers {
            let _ = rx.recv_timeout(Duration::from_secs(5));
        }
        if up {
            self.dispatch.metrics.record_link_up();
        } else {
            self.dispatch.metrics.record_link_down();
        }
    }

    /// Updates the telemetry scenario-phase gauge (0 none, 1 ramp,
    /// 2 replay, 3 probe) — set by a hosting scenario driver so the
    /// daemon's `/metrics` shows which phase the load is in.
    pub fn set_scenario_phase(&self, phase: u64) {
        self.dispatch.metrics.set_scenario_phase(phase);
    }

    /// Updates the telemetry resident-reservations gauge with the
    /// hosting scenario driver's count of flows it holds open.
    pub fn set_scenario_resident(&self, flows: u64) {
        self.dispatch.metrics.set_scenario_resident_flows(flows);
    }

    /// Point-in-time stats: live metrics plus the class directory —
    /// exactly what the telemetry endpoint serves, without the socket.
    #[must_use]
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.dispatch.stats_snapshot()
    }

    /// Stops accepting, drains connections and workers, and returns the
    /// final accounting. A panicked daemon thread is tallied in
    /// [`ServerReport::failures`] (and its shard's counters go missing
    /// from the totals) rather than poisoning the whole shutdown.
    #[must_use]
    pub fn shutdown(self) -> ServerReport {
        self.dispatch.stop.store(true, Ordering::SeqCst);
        let mut failures = ThreadFailures::default();
        // Wake every io loop so none sits out its full wait timeout.
        for shared in &self.io_shared {
            shared.waker.wake();
        }
        for h in self.io_handles {
            if h.join().is_err() {
                failures.readers += 1;
            }
        }
        if let Some(h) = self.stats_handle {
            if h.join().is_err() {
                failures.stats += 1;
            }
        }
        // The io loops are gone; workers drain in-flight jobs and exit
        // on the stop flag (the Arc keeps one sender clone alive until
        // report time, so disconnection alone would not stop them). A
        // panicked worker is tallied, but its shard — behind the shared
        // handle — still reports.
        let dispatch = self.dispatch;
        for h in self.worker_handles {
            if h.join().is_err() {
                failures.workers += 1;
            }
        }
        if let Some(h) = self.flusher_handle {
            if h.join().is_err() {
                failures.flusher += 1;
            }
        }
        // Workers have drained every in-flight commit batch by now, so
        // this final rotation — seal the journal with one last fsync,
        // snapshot the MIBs — captures exactly the state the report
        // describes. Restarting from the data directory resumes from
        // the snapshot alone.
        if let Some(stores) = &dispatch.stores {
            for (idx, store) in stores.iter().enumerate() {
                let guard = dispatch.shards[idx].read();
                rotate_shard(store, &guard, dispatch.now(), dispatch.metrics.shard(idx));
            }
        }

        let mut report = ServerReport {
            requested: 0,
            admitted: 0,
            rejected: 0,
            overloaded: dispatch.overloaded.load(Ordering::SeqCst),
            released: dispatch.released.load(Ordering::SeqCst),
            resident_flows: 0,
            per_shard: Vec::new(),
            classes: class_totals(&dispatch.classes.read()),
            failures,
        };
        for s in &dispatch.shards {
            let s = s.read();
            let stats = s.broker().stats();
            report.requested += stats.requested;
            report.admitted += stats.admitted;
            report.rejected += stats.requested - stats.admitted;
            report.resident_flows += s.broker().flows().len() as u64;
            report.per_shard.push((stats.requested, stats.admitted));
        }
        report
    }
}

/// Dials the downstream peer domain, retrying for a few seconds so a
/// chain launched terminal-first wins the startup race without outside
/// orchestration. The socket is nonblocking with Nagle off, ready for
/// the event loop to own.
fn dial_peer(addr: &str) -> io::Result<std::net::TcpStream> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                stream.set_nonblocking(true)?;
                return Ok(stream);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("dialing peer {addr}: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Upper bound on jobs applied under one write-lock acquisition. The
/// lock handover between eight deciding readers and a committing
/// worker costs more than a commit itself, so the worker drains what
/// has queued and applies it in one critical section; the bound keeps
/// any single acquisition from starving decides for long.
const COMMIT_BATCH: usize = 64;

/// One shard worker: serializes commits on its shard's write lock,
/// draining up to [`COMMIT_BATCH`] queued jobs per acquisition; runs
/// until shutdown. Each job is applied under `catch_unwind` so a panic
/// mid-job can never strand a `flow_owner` mapping for the in-flight
/// flow — the mapping is cleared before the panic resumes (and is then
/// tallied as a worker failure at shutdown).
fn worker_loop(
    shard: &Arc<RwLock<BrokerShard>>,
    idx: usize,
    jobs: &Receiver<Job>,
    dispatch: &Arc<Dispatch>,
) {
    let metrics = dispatch.metrics.shard(idx);
    let mut batch = Vec::with_capacity(COMMIT_BATCH);
    loop {
        match jobs.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => {
                batch.push(job);
                while batch.len() < COMMIT_BATCH {
                    match jobs.try_recv() {
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    }
                }
                metrics.set_queue_depth(jobs.len() as u64);
                let mut guard = shard.write();
                for job in batch.drain(..) {
                    let flow = job.flow();
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_job(job, &mut guard, idx, dispatch);
                    }));
                    if let Err(panic) = outcome {
                        if let Some(flow) = flow {
                            dispatch.flow_owner.write().remove(&flow);
                        }
                        std::panic::resume_unwind(panic);
                    }
                }
                // Drive contingency timers in the normal drain too: a
                // shard kept busy by a steady request stream would
                // otherwise never hit the idle beat below, and bounding
                // grants (eq. 17) would outlive their period for as long
                // as the load lasts. The write lock is already held, and
                // `next_expiry` is a cheap scan of live macroflows.
                drive_timers(&mut guard, idx, dispatch);
                // Rotation happens under the same write lock, so no
                // append can slip between capturing the image and
                // sealing the journal it supersedes.
                if let Some(store) = dispatch.store(idx) {
                    if store.records_since_snapshot() >= dispatch.snapshot_every {
                        rotate_shard(store, &guard, dispatch.now(), metrics);
                    }
                }
                mirror_pipeline_gauges(&guard, dispatch);
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                metrics.set_queue_depth(jobs.len() as u64);
                if dispatch.stop.load(Ordering::SeqCst) && jobs.is_empty() {
                    return;
                }
                // Idle beat: drive contingency timers. Gated on a due
                // expiry — like the busy path — so every applied tick is
                // a state change worth journaling and no-op beats stay
                // out of the journal.
                let mut guard = shard.write();
                drive_timers(&mut guard, idx, dispatch);
                mirror_pipeline_gauges(&guard, dispatch);
            }
            Err(channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs the shard's contingency-timer sweep when one is due, journaling
/// the applied sweep. Not-due sweeps mutate nothing and are skipped.
fn drive_timers(shard: &mut BrokerShard, idx: usize, dispatch: &Arc<Dispatch>) {
    let now = dispatch.now();
    if shard.next_expiry().is_some_and(|due| due <= now) {
        shard.tick(now);
        let _ = journal(dispatch.store(idx), &WalRecord::Tick { now });
    }
}

/// Appends one record to the shard's journal, when one exists,
/// returning where it landed — the position a replication ack must
/// cover before the decision it encodes may be released. An append
/// failure is fatal for the worker: continuing would leave a hole in
/// the journal and make recovery silently wrong.
fn journal(store: Option<&ShardStore>, record: &WalRecord) -> Option<WalPosition> {
    store.map(|store| {
        store
            .append(record)
            .unwrap_or_else(|e| panic!("journal append failed: {e}"))
    })
}

/// Rotates a shard's journal: seals the current epoch with a final
/// fsync, snapshots the MIB image, opens the next epoch, and reflects
/// the new sizes in telemetry. The caller holds the shard lock.
fn rotate_shard(store: &ShardStore, shard: &BrokerShard, now: Time, metrics: &ShardMetrics) {
    match store.rotate(&shard.export_image(), now) {
        Ok(stats) => {
            metrics.record_wal_fsync_ns(stats.seal_fsync_ns);
            metrics.set_snapshot_bytes(stats.snapshot_bytes);
            metrics.set_wal_bytes(0);
        }
        Err(e) => panic!("journal rotation failed: {e}"),
    }
}

/// Group commit: fsyncs every shard's journal once per interval,
/// recording the fsync latency and journal size. Runs until shutdown;
/// the final flush is the rotation in [`BbServer::shutdown`].
fn flusher_loop(stores: &[Arc<ShardStore>], interval: Duration, dispatch: &Arc<Dispatch>) {
    let beat = Duration::from_millis(5);
    while !dispatch.stop.load(Ordering::SeqCst) {
        // Sleep the interval in short beats so shutdown is never stuck
        // behind a long flush period.
        let deadline = Instant::now() + interval;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || dispatch.stop.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(left.min(beat));
        }
        for (idx, store) in stores.iter().enumerate() {
            match store.flush() {
                Ok(Some(sample)) => {
                    let m = dispatch.metrics.shard(idx);
                    m.record_wal_fsync_ns(sample.fsync_ns);
                    m.set_wal_bytes(sample.wal_bytes);
                }
                Ok(None) => {}
                Err(e) => panic!("wal flush failed on shard {idx}: {e}"),
            }
        }
    }
}

/// Applies one job to the shard (the worker's commit half); the caller
/// holds the shard's write lock for the whole batch.
fn handle_job(job: Job, shard: &mut BrokerShard, idx: usize, dispatch: &Arc<Dispatch>) {
    let metrics = dispatch.metrics.shard(idx);
    match job {
        Job::Commit {
            plan,
            reply,
            enqueued,
            decide_ns,
        } => {
            let now = dispatch.now();
            let t0 = Instant::now();
            let decision = shard.commit(now, &plan);
            let commit_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // Journal the committed admission — rejects too, since they
            // advance the broker's counters and replay must reproduce
            // them. The request (with its shard-local path id) is the
            // whole input: by serial equivalence the commit behaved as a
            // monolithic request at `now`, which is exactly how recovery
            // replays it.
            let pos = journal(
                dispatch.store(idx),
                &WalRecord::Admit {
                    now,
                    request: plan.request.clone(),
                },
            );
            metrics.record_decide_ns(decide_ns);
            metrics.record_commit_ns(commit_ns);
            // The combined series keeps its historical meaning: total
            // time inside the broker for this request.
            metrics.record_decision_ns(decide_ns.saturating_add(commit_ns));
            let flow = plan.request.flow;
            match decision {
                Ok(res) => {
                    metrics.record_admit();
                    dispatch.flow_owner.write().insert(flow, idx);
                    if matches!(plan.request.service, ServiceKind::Class(_)) {
                        refresh_class_usage(shard, dispatch);
                    }
                    // With a standby attached, the DEC waits for the ack
                    // covering its journal record: an admission the edge
                    // has seen admitted survives a primary crash.
                    dispatch.gate_send(idx, pos, &reply, cops::encode_decision_install(&res));
                }
                Err(cause) => {
                    // No mapping is ever inserted for a rejected flow.
                    metrics.record_reject(cause);
                    dispatch.gate_send(idx, pos, &reply, cops::encode_decision_reject(flow, cause));
                }
            }
            dispatch
                .metrics
                .record_setup_ns(u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        Job::Delete { flow, reply } => {
            let now = dispatch.now();
            let released = shard.release(now, flow);
            match released {
                Ok(updated) => {
                    // Journal only applied releases; an unknown-flow DRQ
                    // mutates nothing.
                    let pos = journal(dispatch.store(idx), &WalRecord::Release { now, flow });
                    dispatch.flow_owner.write().remove(&flow);
                    dispatch.released.fetch_add(1, Ordering::Relaxed);
                    metrics.record_release();
                    // For class members the macroflow's revised
                    // reservation goes back to the edge.
                    if let Some(res) = updated {
                        refresh_class_usage(shard, dispatch);
                        dispatch.gate_send(idx, pos, &reply, cops::encode_decision_install(&res));
                    }
                }
                Err(_) => {
                    // The broker does not know the flow, so any mapping
                    // pointing here is stale by definition — clear it
                    // and tell the edge explicitly.
                    dispatch.flow_owner.write().remove(&flow);
                    reply.send(cops::encode_delete_unknown(flow));
                }
            }
        }
        Job::FedAdmit {
            flow,
            profile,
            rate,
            delay,
            path,
            origin,
            enqueued,
            rollback_downstream,
        } => {
            let now = dispatch.now();
            let t0 = Instant::now();
            // Decide and commit back-to-back under the held write
            // lock: the plan's epoch cannot go stale in between, so
            // the answer below is authoritative, never a retry.
            let plan = shard.decide_exact(flow, &profile, rate, delay, path);
            let decision = shard.commit(now, &plan);
            metrics.record_decision_ns(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            // Deliberately NOT journaled: a WAL replay re-runs records
            // as fresh admissions, which would recompute this flow's
            // rate from local state instead of restoring the exact
            // chain-computed pair. Federation and durability do not
            // compose in this version (DESIGN.md §4i).
            match decision {
                Ok(res) => {
                    metrics.record_admit();
                    dispatch.flow_owner.write().insert(flow, idx);
                    match origin {
                        Origin::Client(reply) => {
                            // The whole chain said yes: answer the edge
                            // client and finalize downstream, carrying
                            // the chain-computed ⟨r, d⟩ every domain
                            // must find matching its tentative booking.
                            reply.send(cops::encode_decision_install(&res));
                            dispatch.fed.forward_commit(&PeerCommit {
                                flow,
                                rate: res.rate,
                                delay: res.delay,
                            });
                        }
                        Origin::Peer(reply) => {
                            // Record the pair *before* answering: once
                            // the answer is on the wire the PEER-COMMIT
                            // may race back, and its assert needs the
                            // booking to check against.
                            dispatch.fed.record_booking(flow, res.rate, res.delay);
                            reply.send(cops::encode_peer_answer(&PeerAnswer::Ok {
                                flow,
                                rate: res.rate,
                                delay: res.delay,
                            }));
                        }
                    }
                }
                Err(cause) => {
                    metrics.record_reject(cause);
                    if rollback_downstream {
                        // Downstream booked tentatively on our behalf;
                        // compensate before refusing upstream so no
                        // abort path leaves a booking anywhere.
                        dispatch.fed.forward_release(flow);
                    }
                    origin.refuse(flow, cause);
                }
            }
            dispatch
                .metrics
                .record_setup_ns(u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        Job::FedRelease { flow } => {
            let now = dispatch.now();
            // Drop any tentative-booking record too: a released flow's
            // late PEER-COMMIT has nothing to assert against.
            let _ = dispatch.fed.take_booking(flow);
            if shard.release(now, flow).is_ok() {
                dispatch.flow_owner.write().remove(&flow);
                dispatch.released.fetch_add(1, Ordering::Relaxed);
                metrics.record_release();
            }
            // Not journaled (see FedAdmit) and never answered — the
            // release propagates down the chain, it is not a request.
        }
        Job::Report { macroflow, at } => {
            shard.edge_buffer_empty(at, macroflow);
            // Journaled with the daemon's clock, not the edge-supplied
            // `at`: the broker ignores the report's timestamp (the reset
            // is unconditional), and keeping wire-controlled times out
            // of the journal keeps the recovered clock base sane.
            let _ = journal(
                dispatch.store(idx),
                &WalRecord::Report {
                    now: dispatch.now(),
                    macroflow,
                },
            );
        }
        Job::ReplApply { record } => {
            // The same replay entry points recovery drives, plus the
            // derived state recovery rebuilds wholesale: the flow →
            // shard map and the class directory stay live so the shard
            // serves correctly the instant promotion opens the door.
            match &record {
                WalRecord::Admit { now, request } => {
                    if shard.replay_request(*now, request).is_ok() {
                        dispatch.flow_owner.write().insert(request.flow, idx);
                        if matches!(request.service, ServiceKind::Class(_)) {
                            refresh_class_usage(shard, dispatch);
                        }
                    }
                }
                WalRecord::Release { now, flow } => {
                    if let Ok(updated) = shard.release(*now, *flow) {
                        dispatch.flow_owner.write().remove(flow);
                        if updated.is_some() {
                            refresh_class_usage(shard, dispatch);
                        }
                    }
                }
                WalRecord::Report { now, macroflow } => {
                    let _ = shard.edge_buffer_empty(*now, *macroflow);
                }
                WalRecord::Tick { now } => {
                    let _ = shard.tick(*now);
                }
            }
            if let Some(replica) = &dispatch.replica {
                let applied = replica.note_applied(record_now(&record));
                dispatch.metrics.set_repl_applied(applied);
            }
        }
        Job::ReplRestore { image } => {
            shard.restore_image(&image);
            let mut owners = dispatch.flow_owner.write();
            owners.retain(|_, owner| *owner != idx);
            for (flow, _) in shard.broker().flows().iter() {
                owners.insert(*flow, idx);
            }
            drop(owners);
            refresh_class_usage(shard, dispatch);
        }
        Job::SetLinkState { link, up } => {
            // Not journaled: link state is transient operational fact,
            // not QoS bookkeeping — a recovered daemon starts with the
            // topology fully up and re-learns outages from its driver.
            shard.set_link_state(link, up);
        }
        Job::Barrier { done } => {
            let _ = done.send(());
        }
    }
}

/// Mirrors the shard broker's pipeline gauges (plan retries/aborts,
/// path-cache hits/misses — with the lock-free handle's hits folded
/// in), seqlock retry totals, contingency lifecycle totals, and
/// dense-store occupancy into the telemetry registry as absolute
/// running totals.
fn mirror_pipeline_gauges(shard: &BrokerShard, dispatch: &Arc<Dispatch>) {
    let broker = shard.broker();
    let stats = broker.stats();
    let (mut hits, misses) = broker.path_cache_counters();
    let mut seqlock_retries = broker.seqlock_retries();
    if let Some(fast) = dispatch.fast.as_ref().map(|f| &f[shard.shard()]) {
        // A fast-path hit never reaches the broker's counters; a fast-
        // path decline falls through to the locked decide, which counts
        // its own probe — so adding only the handle's hits keeps one
        // count per decision.
        hits += fast.hits();
        seqlock_retries += fast.seqlock_retries();
    }
    let metrics = dispatch.metrics.shard(shard.shard());
    metrics.set_pipeline_gauges(stats.plan_retries, stats.plan_aborts, hits, misses);
    metrics.set_seqlock_retries(seqlock_retries);
    metrics.set_contingency_gauges(stats.grants, stats.grant_expiries, stats.grant_resets);
    let occ = broker.store_occupancy();
    metrics.set_store_gauges(
        occ.interned_flows,
        occ.flow_slots,
        occ.macroflows,
        occ.macroflow_slots,
    );
}

/// Recomputes this shard's slot of the cross-shard class directory from
/// its broker's macroflow registry (idempotent — correct after joins,
/// leaves, and teardowns alike).
fn refresh_class_usage(shard: &BrokerShard, dispatch: &Arc<Dispatch>) {
    let mut local: HashMap<u32, ClassUsage> = HashMap::new();
    for m in shard.broker().macroflows() {
        let u = local.entry(m.class).or_default();
        u.members += m.members;
        u.reserved_bps += m.reserved.as_bps();
    }
    let shards_total = dispatch.jobs.len();
    let mut dir = dispatch.classes.write();
    // Zero this shard's slot everywhere first so vanished classes clear.
    for slots in dir.values_mut() {
        slots[shard.shard()] = ClassUsage::default();
    }
    for (class, usage) in local {
        let slots = dir
            .entry(class)
            .or_insert_with(|| vec![ClassUsage::default(); shards_total]);
        slots[shard.shard()] = usage;
    }
}
