//! The concurrent bandwidth-broker daemon.
//!
//! Architecture (one process, all threads named for debuggability):
//!
//! ```text
//!  edge routers ──TCP──▶ accept thread ──▶ per-connection reader thread
//!                                             │        ▲
//!                       bounded crossbeam     │        │ per-connection
//!                       job queues (one       ▼        │ writer thread
//!                       per shard)       shard worker ─┘
//!                                        (owns a BrokerShard)
//! ```
//!
//! * **Readers** frame the COPS stream ([`crate::frame::FrameReader`]),
//!   decode each message, and dispatch it to the owning shard's queue.
//!   Path → shard is a lock-free table lookup; flow → shard (for `DRQ`)
//!   reads a [`RwLock`]-guarded map the workers maintain; macroflow →
//!   shard (for `RPT`) is pure arithmetic on the id-space partition.
//! * **Workers** each own one [`BrokerShard`] outright — the link-
//!   disjoint pod partition means no locking on the admission hot path.
//!   Decisions are encoded and handed to the requesting connection's
//!   writer queue.
//! * **Backpressure** is explicit: shard queues are bounded, and a full
//!   queue turns the request into an immediate `DEC` reject with the
//!   [`Reject::Overloaded`] cause — the edge learns it was shed, rather
//!   than the daemon buffering without bound or silently dropping.
//! * **Shutdown** is clean and total-ordered: stop flag → accept thread
//!   → readers (bounded by the read timeout) → writers → workers, which
//!   return their shards so the final [`ServerReport`] is exact.
//!
//! The broker itself stays a passive, explicit-time state machine; the
//! daemon is the clock owner and stamps each job with the elapsed time
//! since start.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use qos_units::Time;
use vtrs::packet::FlowId;

use bb_core::broker::BrokerConfig;
use bb_core::cops::{self, OpCode};
use bb_core::shard::{build_shards, plan_shards, shard_of_macroflow, BrokerShard};
use bb_core::signaling::{FlowRequest, Reject, ServiceKind};
use bb_telemetry::MetricsRegistry;
use netsim::topology::{LinkId, Topology};

use crate::frame::FrameReader;
use crate::stats::{stats_loop, StatsSnapshot};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shard worker threads (also the number of broker shards).
    pub workers: usize,
    /// Bound on each shard's job queue; beyond it requests are shed
    /// with [`Reject::Overloaded`].
    pub queue_depth: usize,
    /// Per-connection socket read timeout — the granularity at which
    /// idle readers notice shutdown.
    pub read_timeout: Duration,
    /// Broker configuration applied to every shard.
    pub broker: BrokerConfig,
    /// Address for the side telemetry endpoint (`GET /stats`,
    /// `GET /metrics`); `None` disables it. Use port 0 for an ephemeral
    /// port, resolved via [`BbServer::stats_addr`].
    pub stats_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 1024,
            read_timeout: Duration::from_millis(20),
            broker: BrokerConfig::default(),
            stats_addr: None,
        }
    }
}

/// Cross-shard view of one service class's aggregate state, maintained
/// by the workers under a [`RwLock`] — the only mutable state shared
/// between shards, used for domain-wide monitoring (class joins and
/// reserved bandwidth span shards, which own disjoint paths).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClassUsage {
    /// Microflows currently aggregated under the class, domain-wide.
    pub members: u64,
    /// Total reserved macroflow bandwidth (bps), domain-wide.
    pub reserved_bps: u64,
}

/// Per-class, per-shard contributions; summed into [`ClassUsage`] for
/// reporting. Keyed by class id; each shard writes only its own slot.
type ClassDirectory = HashMap<u32, Vec<ClassUsage>>;

fn class_totals(dir: &ClassDirectory) -> Vec<(u32, ClassUsage)> {
    let mut v: Vec<(u32, ClassUsage)> = dir
        .iter()
        .map(|(class, shards)| {
            let total = shards
                .iter()
                .fold(ClassUsage::default(), |a, s| ClassUsage {
                    members: a.members + s.members,
                    reserved_bps: a.reserved_bps + s.reserved_bps,
                });
            (*class, total)
        })
        .collect();
    v.sort_by_key(|(class, _)| *class);
    v
}

/// Daemon threads that panicked instead of exiting cleanly, tallied at
/// shutdown so one poisoned connection or worker degrades the final
/// accounting instead of aborting it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ThreadFailures {
    /// The accept thread panicked (its reader handles are lost; those
    /// readers still exit on the stop flag but go unjoined).
    pub accept: u64,
    /// Connection reader threads that panicked.
    pub readers: u64,
    /// Shard workers that panicked — their shard's counters and
    /// resident flows are missing from the report totals.
    pub workers: u64,
    /// The telemetry endpoint thread panicked.
    pub stats: u64,
}

impl ThreadFailures {
    /// True when every daemon thread exited cleanly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.accept == 0 && self.readers == 0 && self.workers == 0 && self.stats == 0
    }
}

/// Final accounting returned by [`BbServer::shutdown`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServerReport {
    /// Admission requests that reached a broker shard.
    pub requested: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected by admission control (any cause but overload).
    pub rejected: u64,
    /// Requests shed at the queue with [`Reject::Overloaded`].
    pub overloaded: u64,
    /// Flows released via `DRQ`.
    pub released: u64,
    /// Flow records still resident across all shards (state footprint).
    pub resident_flows: u64,
    /// Per-shard `(requested, admitted)` pairs.
    pub per_shard: Vec<(u64, u64)>,
    /// Domain-wide class usage at shutdown.
    pub classes: Vec<(u32, ClassUsage)>,
    /// Threads that panicked during the daemon's lifetime.
    pub failures: ThreadFailures,
}

/// One unit of work for a shard worker.
enum Job {
    Request {
        req: FlowRequest,
        reply: Sender<Bytes>,
        /// Dispatch time, for the end-to-end setup-latency histogram.
        enqueued: Instant,
    },
    Delete {
        flow: FlowId,
        reply: Sender<Bytes>,
    },
    Report {
        macroflow: FlowId,
        at: Time,
    },
}

/// Immutable dispatch state shared by every reader thread.
struct Dispatch {
    /// Global path index → shard.
    path_shard: Vec<usize>,
    /// Shard job queues.
    jobs: Vec<Sender<Job>>,
    /// Flow → owning shard (maintained by workers; read on `DRQ`).
    flow_owner: RwLock<HashMap<FlowId, usize>>,
    /// Requests shed due to full queues.
    overloaded: AtomicU64,
    /// Flows released (DRQ) across all shards.
    released: AtomicU64,
    /// Cross-shard class usage.
    classes: RwLock<ClassDirectory>,
    /// Live telemetry, updated lock-free by workers and the dispatcher.
    metrics: MetricsRegistry,
    stop: AtomicBool,
    started: Instant,
}

impl Dispatch {
    fn now(&self) -> Time {
        Time::from_nanos(u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            metrics: self.metrics.snapshot(),
            classes: class_totals(&self.classes.read()),
        }
    }
}

/// A running daemon. Dropping it without [`BbServer::shutdown`] detaches
/// the threads; call `shutdown` for a clean stop and final report.
pub struct BbServer {
    addr: SocketAddr,
    stats_addr: Option<SocketAddr>,
    dispatch: Arc<Dispatch>,
    accept_handle: JoinHandle<Vec<JoinHandle<()>>>,
    stats_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<BrokerShard>>,
}

impl BbServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// daemon over the given routed topology: route `i` is served under
    /// the global path id `i`, sharded by pod across `config.workers`
    /// workers.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    ///
    /// # Panics
    ///
    /// Panics when the pod partition is not link-disjoint (see
    /// [`build_shards`]) or `config.workers` is zero.
    pub fn start(
        addr: &str,
        topo: &Topology,
        routes: &[Vec<LinkId>],
        config: &ServerConfig,
    ) -> io::Result<Self> {
        assert!(config.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let plan = plan_shards(topo, routes, config.workers);
        let shards = build_shards(topo, &config.broker, routes, config.workers);
        let mut path_shard = vec![0usize; routes.len()];
        for (shard, members) in plan.iter().enumerate() {
            for &i in members {
                path_shard[i] = shard;
            }
        }

        let mut jobs = Vec::new();
        let mut worker_rxs = Vec::new();
        for _ in 0..shards.len() {
            let (tx, rx) = channel::bounded::<Job>(config.queue_depth);
            jobs.push(tx);
            worker_rxs.push(rx);
        }

        let stats_listener = match &config.stats_addr {
            Some(a) => {
                let l = TcpListener::bind(a)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let stats_addr = match &stats_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let shard_count = shards.len();
        let dispatch = Arc::new(Dispatch {
            path_shard,
            jobs,
            flow_owner: RwLock::new(HashMap::new()),
            overloaded: AtomicU64::new(0),
            released: AtomicU64::new(0),
            classes: RwLock::new(ClassDirectory::new()),
            metrics: MetricsRegistry::new(shard_count),
            stop: AtomicBool::new(false),
            started: Instant::now(),
        });

        let stats_handle = stats_listener.map(|listener| {
            let dispatch = Arc::clone(&dispatch);
            std::thread::Builder::new()
                .name("bb-stats".into())
                .spawn(move || {
                    let snapshot = || dispatch.stats_snapshot();
                    stats_loop(&listener, &dispatch.stop, &snapshot);
                })
                .expect("spawn stats thread")
        });

        let worker_handles = shards
            .into_iter()
            .zip(worker_rxs)
            .map(|(shard, rx)| {
                let dispatch = Arc::clone(&dispatch);
                std::thread::Builder::new()
                    .name(format!("bb-shard-{}", shard.shard()))
                    .spawn(move || worker_loop(shard, &rx, &dispatch))
                    .expect("spawn shard worker")
            })
            .collect();

        let accept_dispatch = Arc::clone(&dispatch);
        let read_timeout = config.read_timeout;
        let accept_handle = std::thread::Builder::new()
            .name("bb-accept".into())
            .spawn(move || accept_loop(&listener, &accept_dispatch, read_timeout))
            .expect("spawn accept thread");

        Ok(BbServer {
            addr,
            stats_addr,
            dispatch,
            accept_handle,
            stats_handle,
            worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The telemetry endpoint's bound address, when one is configured.
    #[must_use]
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.stats_addr
    }

    /// Snapshot of the cross-shard class directory (summed over shards).
    #[must_use]
    pub fn class_usage(&self) -> Vec<(u32, ClassUsage)> {
        class_totals(&self.dispatch.classes.read())
    }

    /// Point-in-time stats: live metrics plus the class directory —
    /// exactly what the telemetry endpoint serves, without the socket.
    #[must_use]
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.dispatch.stats_snapshot()
    }

    /// Stops accepting, drains connections and workers, and returns the
    /// final accounting. A panicked daemon thread is tallied in
    /// [`ServerReport::failures`] (and its shard's counters go missing
    /// from the totals) rather than poisoning the whole shutdown.
    #[must_use]
    pub fn shutdown(self) -> ServerReport {
        self.dispatch.stop.store(true, Ordering::SeqCst);
        let mut failures = ThreadFailures::default();
        match self.accept_handle.join() {
            Ok(readers) => {
                for r in readers {
                    if r.join().is_err() {
                        failures.readers += 1;
                    }
                }
            }
            Err(_) => failures.accept += 1,
        }
        if let Some(h) = self.stats_handle {
            if h.join().is_err() {
                failures.stats += 1;
            }
        }
        // Readers are gone; dropping our queue handles disconnects the
        // workers once in-flight jobs drain.
        let dispatch = self.dispatch;
        let shards: Vec<BrokerShard> = {
            // `dispatch.jobs` senders live inside the Arc; workers watch
            // the stop flag as well, so they exit even though the Arc
            // (and thus one sender clone) survives until report time.
            self.worker_handles
                .into_iter()
                .filter_map(|h| h.join().map_err(|_| failures.workers += 1).ok())
                .collect()
        };

        let mut report = ServerReport {
            requested: 0,
            admitted: 0,
            rejected: 0,
            overloaded: dispatch.overloaded.load(Ordering::SeqCst),
            released: dispatch.released.load(Ordering::SeqCst),
            resident_flows: 0,
            per_shard: Vec::new(),
            classes: class_totals(&dispatch.classes.read()),
            failures,
        };
        for s in &shards {
            let stats = s.broker().stats();
            report.requested += stats.requested;
            report.admitted += stats.admitted;
            report.rejected += stats.requested - stats.admitted;
            report.resident_flows += s.broker().flows().len() as u64;
            report.per_shard.push((stats.requested, stats.admitted));
        }
        report
    }
}

fn accept_loop(
    listener: &TcpListener,
    dispatch: &Arc<Dispatch>,
    read_timeout: Duration,
) -> Vec<JoinHandle<()>> {
    let mut readers = Vec::new();
    let mut conn_id = 0u64;
    while !dispatch.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let dispatch = Arc::clone(dispatch);
                conn_id += 1;
                let handle = std::thread::Builder::new()
                    .name(format!("bb-conn-{conn_id}"))
                    .spawn(move || connection_loop(stream, &dispatch, read_timeout))
                    .expect("spawn connection reader");
                readers.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    readers
}

/// Reader half of one edge-router connection. Owns the socket; spawns
/// and joins the paired writer thread.
fn connection_loop(stream: TcpStream, dispatch: &Arc<Dispatch>, read_timeout: Duration) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::unbounded::<Bytes>();
    let writer = std::thread::Builder::new()
        .name("bb-conn-writer".into())
        .spawn(move || writer_loop(write_half, &reply_rx))
        .expect("spawn connection writer");

    read_until_closed(stream, dispatch, &reply_tx);

    drop(reply_tx);
    let _ = writer.join();
}

fn read_until_closed(mut stream: TcpStream, dispatch: &Arc<Dispatch>, reply_tx: &Sender<Bytes>) {
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 4096];
    loop {
        if dispatch.stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                reader.extend(&chunk[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(frame)) => {
                            if !handle_frame(&frame, dispatch, reply_tx) {
                                return;
                            }
                        }
                        Ok(None) => break,
                        // Framing errors are unrecoverable: drop the
                        // connection.
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return,
        }
    }
}

fn writer_loop(mut stream: TcpStream, replies: &Receiver<Bytes>) {
    while let Ok(bytes) = replies.recv() {
        if stream.write_all(&bytes).is_err() {
            // Peer gone; drain silently so senders never block.
            while replies.recv().is_ok() {}
            return;
        }
    }
    let _ = stream.flush();
}

/// Decodes and dispatches one frame. Returns `false` when the
/// connection must close (protocol violation).
fn handle_frame(wire: &Bytes, dispatch: &Arc<Dispatch>, reply_tx: &Sender<Bytes>) -> bool {
    let mut buf = wire.clone();
    let Ok(frame) = cops::decode_frame(&mut buf) else {
        return false;
    };
    match frame.op {
        OpCode::Request => {
            let Ok(req) = cops::decode_request(&frame) else {
                return false;
            };
            dispatch_request(req, dispatch, reply_tx);
            true
        }
        OpCode::DeleteRequest => {
            let Ok(flow) = cops::decode_delete(&frame) else {
                return false;
            };
            let owner = dispatch.flow_owner.read().get(&flow).copied();
            if let Some(shard) = owner {
                let job = Job::Delete {
                    flow,
                    reply: reply_tx.clone(),
                };
                if let Err(TrySendError::Full(_)) = dispatch.jobs[shard].try_send(job) {
                    shed(flow, shard, dispatch, reply_tx);
                }
            }
            // Unknown flows: DRQ is fire-and-forget state cleanup.
            true
        }
        OpCode::Report => {
            let Ok((macroflow, at)) = cops::decode_buffer_empty(&frame) else {
                return false;
            };
            if let Some(shard) = shard_of_macroflow(macroflow, dispatch.jobs.len()) {
                // Reports shed under overload are safe to drop: the
                // contingency timer still bounds the grant.
                let _ = dispatch.jobs[shard].try_send(Job::Report { macroflow, at });
            }
            true
        }
        OpCode::KeepAlive => true,
        OpCode::Decision => false,
    }
}

fn dispatch_request(req: FlowRequest, dispatch: &Arc<Dispatch>, reply_tx: &Sender<Bytes>) {
    let Some(&shard) = dispatch
        .path_shard
        .get(usize::try_from(req.path.0).unwrap_or(usize::MAX))
    else {
        // A path this daemon does not serve: refused before any
        // resource test, which is what the Policy cause means.
        dispatch.metrics.record_unrouted();
        let _ = reply_tx.send(cops::encode_decision_reject(req.flow, Reject::Policy));
        return;
    };
    let flow = req.flow;
    let job = Job::Request {
        req,
        reply: reply_tx.clone(),
        enqueued: Instant::now(),
    };
    if let Err(TrySendError::Full(_)) = dispatch.jobs[shard].try_send(job) {
        shed(flow, shard, dispatch, reply_tx);
    }
}

fn shed(flow: FlowId, shard: usize, dispatch: &Arc<Dispatch>, reply_tx: &Sender<Bytes>) {
    dispatch.overloaded.fetch_add(1, Ordering::Relaxed);
    let m = dispatch.metrics.shard(shard);
    m.record_shed();
    // A shed is still a decision the edge sees; count it in the
    // taxonomy too so snapshot totals reconcile with DEC counts.
    m.record_reject(Reject::Overloaded);
    let _ = reply_tx.send(cops::encode_decision_reject(flow, Reject::Overloaded));
}

/// One shard worker: owns its [`BrokerShard`]; runs until shutdown.
fn worker_loop(
    mut shard: BrokerShard,
    jobs: &Receiver<Job>,
    dispatch: &Arc<Dispatch>,
) -> BrokerShard {
    let metrics = dispatch.metrics.shard(shard.shard());
    loop {
        match jobs.recv_timeout(Duration::from_millis(20)) {
            Ok(Job::Request {
                req,
                reply,
                enqueued,
            }) => {
                metrics.set_queue_depth(jobs.len() as u64);
                let now = dispatch.now();
                let t0 = Instant::now();
                let decision = shard.request(now, &req);
                metrics
                    .record_decision_ns(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                match decision {
                    Ok(res) => {
                        metrics.record_admit();
                        dispatch.flow_owner.write().insert(req.flow, shard.shard());
                        if matches!(req.service, ServiceKind::Class(_)) {
                            refresh_class_usage(&shard, dispatch);
                        }
                        let _ = reply.send(cops::encode_decision_install(&res));
                    }
                    Err(cause) => {
                        metrics.record_reject(cause);
                        let _ = reply.send(cops::encode_decision_reject(req.flow, cause));
                    }
                }
                dispatch.metrics.record_setup_ns(
                    u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
            Ok(Job::Delete { flow, reply }) => {
                metrics.set_queue_depth(jobs.len() as u64);
                let now = dispatch.now();
                match shard.release(now, flow) {
                    Ok(updated) => {
                        dispatch.flow_owner.write().remove(&flow);
                        dispatch.released.fetch_add(1, Ordering::Relaxed);
                        metrics.record_release();
                        // For class members the macroflow's revised
                        // reservation goes back to the edge.
                        if let Some(res) = updated {
                            refresh_class_usage(&shard, dispatch);
                            let _ = reply.send(cops::encode_decision_install(&res));
                        }
                    }
                    Err(_) => {
                        // Releasing an unknown flow is a no-op.
                    }
                }
            }
            Ok(Job::Report { macroflow, at }) => {
                shard.edge_buffer_empty(at, macroflow);
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                metrics.set_queue_depth(jobs.len() as u64);
                if dispatch.stop.load(Ordering::SeqCst) && jobs.is_empty() {
                    return shard;
                }
                // Idle beat: drive contingency timers.
                shard.tick(dispatch.now());
            }
            Err(channel::RecvTimeoutError::Disconnected) => return shard,
        }
    }
}

/// Recomputes this shard's slot of the cross-shard class directory from
/// its broker's macroflow registry (idempotent — correct after joins,
/// leaves, and teardowns alike).
fn refresh_class_usage(shard: &BrokerShard, dispatch: &Arc<Dispatch>) {
    let mut local: HashMap<u32, ClassUsage> = HashMap::new();
    for m in shard.broker().macroflows() {
        let u = local.entry(m.class).or_default();
        u.members += m.members;
        u.reserved_bps += m.reserved.as_bps();
    }
    let shards_total = dispatch.jobs.len();
    let mut dir = dispatch.classes.write();
    // Zero this shard's slot everywhere first so vanished classes clear.
    for slots in dir.values_mut() {
        slots[shard.shard()] = ClassUsage::default();
    }
    for (class, usage) in local {
        let slots = dir
            .entry(class)
            .or_insert_with(|| vec![ClassUsage::default(); shards_total]);
        slots[shard.shard()] = usage;
    }
}
