//! Incremental framing of a COPS byte stream.
//!
//! TCP delivers the broker's control channel as an arbitrary-chunked
//! byte stream; [`FrameReader`] reassembles it into whole COPS frames
//! using the common header's length field, without ever copying a frame
//! twice or trusting the peer: the length field is bounds-checked
//! against [`MAX_FRAME`] *before* any buffering commitment, so a hostile
//! or corrupted 4 GiB length cannot balloon server memory.
//!
//! Frame *content* validation (version, client-type, object grammar)
//! stays in [`bb_core::cops::decode_frame`]; this layer only finds the
//! boundaries. On any framing error the stream is unrecoverable —
//! length-prefixed framing has no resynchronization point — so the
//! caller must drop the connection.

use bytes::Bytes;

/// Upper bound on a single COPS frame. Every legitimate message of this
/// client-type is under 200 bytes; anything near this limit is garbage
/// or an attack.
pub const MAX_FRAME: usize = 16 * 1024;

/// Why the stream cannot be framed any further.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The header's length field is below the 8-byte header minimum.
    HeaderTooShort {
        /// The claimed total frame length.
        claimed: usize,
    },
    /// The header claims a frame larger than [`MAX_FRAME`].
    Oversized {
        /// The claimed total frame length.
        claimed: usize,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::HeaderTooShort { claimed } => {
                write!(f, "COPS length field {claimed} is below the header size")
            }
            FrameError::Oversized { claimed } => {
                write!(
                    f,
                    "COPS frame of {claimed} bytes exceeds the {MAX_FRAME} limit"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Reassembles COPS frames from stream chunks of any size.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a received chunk.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet framed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the stream is malformed; the connection must
    /// then be closed.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let claimed =
            u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) as usize;
        if claimed < 8 {
            return Err(FrameError::HeaderTooShort { claimed });
        }
        if claimed > MAX_FRAME {
            return Err(FrameError::Oversized { claimed });
        }
        if self.buf.len() < claimed {
            return Ok(None);
        }
        let rest = self.buf.split_off(claimed);
        let frame = std::mem::replace(&mut self.buf, rest);
        Ok(Some(Bytes::from(frame)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A syntactically minimal frame: valid header, no objects.
    fn frame_of_len(len: u32) -> Vec<u8> {
        let mut f = vec![0x10, 9, 0x80, 0x02];
        f.extend_from_slice(&len.to_be_bytes());
        f.resize(len.max(8) as usize, 0);
        f
    }

    #[test]
    fn single_byte_dribble_reassembles() {
        let wire = frame_of_len(24);
        let mut r = FrameReader::new();
        for (i, b) in wire.iter().enumerate() {
            r.extend(std::slice::from_ref(b));
            let got = r.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "frame complete after {} bytes?", i + 1);
            } else {
                assert_eq!(&got.unwrap()[..], &wire[..]);
            }
        }
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn coalesced_frames_split_apart() {
        let mut wire = frame_of_len(16);
        wire.extend_from_slice(&frame_of_len(8));
        wire.extend_from_slice(&frame_of_len(12));
        let mut r = FrameReader::new();
        r.extend(&wire);
        assert_eq!(r.next_frame().unwrap().unwrap().len(), 16);
        assert_eq!(r.next_frame().unwrap().unwrap().len(), 8);
        assert_eq!(r.next_frame().unwrap().unwrap().len(), 12);
        assert!(r.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_and_undersized_lengths_are_rejected() {
        let mut r = FrameReader::new();
        r.extend(&frame_of_len((MAX_FRAME + 1) as u32)[..8]);
        assert_eq!(
            r.next_frame(),
            Err(FrameError::Oversized {
                claimed: MAX_FRAME + 1
            })
        );

        let mut r = FrameReader::new();
        r.extend(&frame_of_len(7)[..8]);
        assert_eq!(
            r.next_frame(),
            Err(FrameError::HeaderTooShort { claimed: 7 })
        );
    }
}
