//! Broker-to-broker federation state: the daemon-side half of the
//! domain-agnostic segment layer ([`bb_core::segment`]).
//!
//! A federated deployment stitches N single-domain daemons into one
//! reservation fabric: each daemon owns its domain's QoS state and
//! dials at most one *downstream* peer (`--peer addr`), forming a
//! chain that mirrors an inter-domain path. Admission then runs the
//! same decide-everywhere / commit-only-if-everyone-said-yes protocol
//! the in-process [`bb_core::hierarchy`] prototype drives, over COPS:
//!
//! ```text
//!  edge REQ ─▶ D0 ──PEER-DEC(h₀,D₀)──▶ D1 ──PEER-DEC(h₀+h₁, …)──▶ D2
//!              │                        │    (terminal: §3.1 rate
//!              │                        │     from the union totals,
//!              │                        │     tentative booking)
//!              │◀──── Ok⟨r,d⟩ (book) ───│◀──── Ok⟨r,d⟩ ────────────┘
//!  edge DEC ◀──┘ ──PEER-COMMIT──▶ … (informational; bookings exist)
//! ```
//!
//! The zero-residue guarantee on abort paths comes from compensating
//! `PEER-RELEASE` messages, not from the commit: a domain whose own
//! booking fails after downstream said yes releases the whole
//! downstream suffix before refusing upstream, and a teardown at the
//! edge releases the whole chain. A dead peer fails *closed*: every
//! in-flight admission that depends on it is answered
//! [`Reject::PeerUnreachable`] with nothing booked anywhere, and the
//! link stays down for the daemon's lifetime (no redial — restarting
//! the chain is the operator's move, and it keeps the failure model
//! legible).
//!
//! This module holds the shared state only — the outbound link, the
//! in-flight (pending) table, and the per-path segment costs. The
//! event loops drive the protocol (`crate::conn`), the shard workers
//! apply the bookings (`Job::FedAdmit` / `Job::FedRelease`).

use std::collections::HashMap;
use std::time::Instant;

use bytes::Bytes;
use parking_lot::Mutex;
use qos_units::{Nanos, Rate};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

use bb_core::cops::{self, PeerAnswer, PeerCommit};
use bb_core::mib::PathId;
use bb_core::signaling::Reject;

use crate::conn::ReplyHandle;

/// The outbound peer link's lifecycle. It only ever moves forward:
/// `Absent → Up → Down` (a daemon without `--peer` stays `Absent`).
enum PeerLink {
    /// No peer configured, or the dialed socket not yet installed by
    /// io loop 0 (a startup-only window — loop 0 installs the peer
    /// before it accepts its first client).
    Absent,
    /// Live outbound connection; sends go through this handle.
    Up(ReplyHandle),
    /// The connection died. Permanent: federated admissions now fail
    /// closed with [`Reject::PeerUnreachable`].
    Down,
}

/// Who is waiting on a downstream answer for a flow, and how to tell
/// them the outcome.
pub(crate) enum Origin {
    /// The flow entered the fabric at this daemon's edge: the outcome
    /// is a client-facing COPS `DEC`.
    Client(ReplyHandle),
    /// The query came from an upstream broker: the outcome is a
    /// `PEER-DEC` answer back up the chain.
    Peer(ReplyHandle),
}

impl Origin {
    /// Refuses the waiting party: a `DEC` reject for a client, a
    /// `Refuse` answer for an upstream broker.
    pub(crate) fn refuse(&self, flow: FlowId, cause: Reject) {
        match self {
            Origin::Client(reply) => reply.send(cops::encode_decision_reject(flow, cause)),
            Origin::Peer(reply) => {
                reply.send(cops::encode_peer_answer(&PeerAnswer::Refuse {
                    flow,
                    cause,
                }));
            }
        }
    }
}

/// One admission parked on the downstream answer.
pub(crate) struct Pending {
    /// Where the outcome goes.
    pub(crate) origin: Origin,
    /// Declared profile, needed to book locally once downstream says
    /// yes (the answer carries only the ⟨rate, delay⟩ pair).
    pub(crate) profile: TrafficProfile,
    /// Global path id (same pod index in every chained domain).
    pub(crate) path: PathId,
    /// When the triggering frame arrived here — start of the
    /// cross-domain setup-latency clock (edge only).
    pub(crate) enqueued: Instant,
    /// When the `PEER-DEC` left for downstream — start of the peer
    /// RTT clock.
    pub(crate) sent_at: Instant,
}

/// Federation state shared by the io loops and shard workers (a field
/// of `Dispatch`). All of it is cold-path: a non-federated daemon
/// never takes these locks, and a federated one takes them once per
/// cross-domain admission, not per packet of io.
pub(crate) struct Federation {
    peer: Mutex<PeerLink>,
    pending: Mutex<HashMap<FlowId, Pending>>,
    /// Tentative bookings made on behalf of an upstream broker, at the
    /// exact ⟨rate, delay⟩ pair this domain committed. The PEER-COMMIT
    /// that finalizes the flow must carry the same pair — a mismatch
    /// means the chain's domains disagree on what was reserved, and the
    /// only safe move is to release the booking rather than keep a
    /// reservation nobody agrees on.
    committed: Mutex<HashMap<FlowId, (Rate, Nanos)>>,
    /// Global path id → this domain's segment cost `(h, D^tot)` —
    /// what this daemon adds to a query's accumulators.
    paths: Vec<(u64, Nanos)>,
    has_peer: bool,
}

impl Federation {
    /// Builds the state for a daemon serving `paths` (indexed by
    /// global path id). `has_peer` marks a daemon that dials
    /// downstream — the edge or a mid-chain domain.
    pub(crate) fn new(paths: Vec<(u64, Nanos)>, has_peer: bool) -> Self {
        Federation {
            peer: Mutex::new(PeerLink::Absent),
            pending: Mutex::new(HashMap::new()),
            committed: Mutex::new(HashMap::new()),
            paths,
            has_peer,
        }
    }

    /// True when this daemon forwards admissions downstream (it was
    /// started with `--peer`). A daemon without one serves locally —
    /// and acts as the chain's terminal domain when queried.
    pub(crate) fn federates(&self) -> bool {
        self.has_peer
    }

    /// This domain's segment cost for a global path id, or `None` for
    /// a path this daemon does not serve.
    pub(crate) fn path_cost(&self, path: PathId) -> Option<(u64, Nanos)> {
        self.paths
            .get(usize::try_from(path.0).unwrap_or(usize::MAX))
            .copied()
    }

    /// Installs the outbound link's reply handle. Called once by io
    /// loop 0 after registering the dialed socket, before it accepts
    /// any client.
    pub(crate) fn set_peer(&self, handle: ReplyHandle) {
        *self.peer.lock() = PeerLink::Up(handle);
    }

    /// Queues `bytes` on the outbound link. `false` when the link is
    /// not up — the caller must fail the admission closed.
    pub(crate) fn peer_send(&self, bytes: Bytes) -> bool {
        match &*self.peer.lock() {
            PeerLink::Up(handle) => {
                handle.send(bytes);
                true
            }
            PeerLink::Absent | PeerLink::Down => false,
        }
    }

    /// Forwards a `PEER-COMMIT` downstream (no-op at the terminal),
    /// carrying the terminal-computed ⟨r, d⟩ so every domain down the
    /// chain can assert its tentative booking matches.
    pub(crate) fn forward_commit(&self, commit: &PeerCommit) {
        if self.has_peer {
            let _ = self.peer_send(cops::encode_peer_commit(commit));
        }
    }

    /// Remembers the ⟨rate, delay⟩ pair this domain booked tentatively
    /// on behalf of an upstream broker, for the commit-time assert.
    pub(crate) fn record_booking(&self, flow: FlowId, rate: Rate, delay: Nanos) {
        self.committed.lock().insert(flow, (rate, delay));
    }

    /// Claims (and forgets) the tentative-booking record a PEER-COMMIT
    /// or PEER-RELEASE resolves. `None` for a flow this domain never
    /// booked for an upstream broker.
    pub(crate) fn take_booking(&self, flow: FlowId) -> Option<(Rate, Nanos)> {
        self.committed.lock().remove(&flow)
    }

    /// Forwards a `PEER-RELEASE` downstream (no-op at the terminal) —
    /// the compensating message for teardown and every abort path.
    pub(crate) fn forward_release(&self, flow: FlowId) {
        if self.has_peer {
            let _ = self.peer_send(cops::encode_peer_release(flow));
        }
    }

    /// Parks an admission awaiting the downstream answer. `false` when
    /// the flow already has one in flight (a duplicate: refuse it
    /// without touching the parked one).
    pub(crate) fn park(&self, flow: FlowId, pending: Pending) -> bool {
        use std::collections::hash_map::Entry;
        match self.pending.lock().entry(flow) {
            Entry::Occupied(_) => false,
            Entry::Vacant(slot) => {
                slot.insert(pending);
                true
            }
        }
    }

    /// True when `flow` has an admission parked on downstream.
    pub(crate) fn is_pending(&self, flow: FlowId) -> bool {
        self.pending.lock().contains_key(&flow)
    }

    /// Claims the parked admission a downstream answer resolves.
    /// `None` for an answer naming no parked flow (stale or bogus —
    /// ignored, the protocol is fail-closed not fail-crash).
    pub(crate) fn resolve(&self, flow: FlowId) -> Option<Pending> {
        self.pending.lock().remove(&flow)
    }

    /// Cross-domain admissions currently in flight (the gauge value).
    pub(crate) fn in_flight(&self) -> u64 {
        self.pending.lock().len() as u64
    }

    /// Marks the link dead and drains every parked admission — the
    /// caller answers each origin [`Reject::PeerUnreachable`]. Nothing
    /// is booked locally for a parked flow, and a downstream domain
    /// that did book tentatively is unreachable by definition — its
    /// operator restarts the chain, which starts it empty.
    pub(crate) fn fail_peer(&self) -> Vec<(FlowId, Pending)> {
        *self.peer.lock() = PeerLink::Down;
        self.pending.lock().drain().collect()
    }
}
