//! Daemon-side coverage for the two subsystems the original
//! integration suite left dark: class-based (macroflow) service through
//! the COPS path, and the live telemetry endpoint observed *while* the
//! daemon is under load.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use bb_core::admission::aggregate::ClassSpec;
use bb_core::broker::BrokerConfig;
use bb_core::cops::Decision;
use bb_core::signaling::{FlowRequest, Reject, ServiceKind};
use bb_core::PathId;
use bb_server::{fetch_metrics_text, fetch_stats, BbServer, CopsClient, ServerConfig};
use netsim::topology::{LinkId, SchedulerSpec, Topology};
use qos_units::{Bits, Nanos, Rate};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

/// Macroflow ids live in the upper half of the `FlowId` space.
const MACRO_BASE: u64 = 1 << 63;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn topology(pods: usize) -> (Topology, Vec<Vec<LinkId>>) {
    Topology::pod_chains(
        pods,
        3,
        Rate::from_bps(1_500_000),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    )
}

fn class_request(flow: u64, class: u32, pod: u64) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: type0(),
        d_req: Nanos::from_secs(20),
        service: ServiceKind::Class(class),
        path: PathId(pod),
    }
}

/// Class-based requests travel the whole COPS path: microflows join a
/// macroflow (one per class × pod), the reservation names the
/// *macroflow* as the conditioned flow with a revised aggregate rate,
/// the class directory fills, and a DRQ-ed member leaves it again.
#[test]
fn class_based_requests_aggregate_into_macroflows() {
    let (topo, routes) = topology(2);
    let config = ServerConfig {
        workers: 2,
        broker: BrokerConfig {
            classes: vec![ClassSpec {
                id: 1,
                d_req: Nanos::from_secs(20),
                cd: Nanos::from_millis(100),
            }],
            ..BrokerConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("start daemon");
    let mut client = CopsClient::connect(&server.local_addr().to_string()).expect("connect");

    // Five joins on pod 0: every reservation reconfigures the same
    // macroflow conditioner, at a non-decreasing aggregate rate.
    let mut macroflow = None;
    let mut last_rate = 0u64;
    for k in 0..5u64 {
        match client.request(&class_request(k, 1, 0)).expect("round trip") {
            Decision::Install(res) => {
                assert_eq!(res.flow, FlowId(k));
                assert!(
                    res.conditioned_flow.0 >= MACRO_BASE,
                    "class service must condition the macroflow, got {:?}",
                    res.conditioned_flow
                );
                let m = *macroflow.get_or_insert(res.conditioned_flow);
                assert_eq!(res.conditioned_flow, m, "one macroflow per class x pod");
                assert!(
                    res.rate.as_bps() >= last_rate,
                    "aggregate rate must not shrink as members join"
                );
                last_rate = res.rate.as_bps();
            }
            Decision::Reject { cause, .. } => panic!("join {k} rejected: {cause}"),
            Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
        }
    }
    // A second pod aggregates separately.
    match client
        .request(&class_request(100, 1, 1))
        .expect("round trip")
    {
        Decision::Install(res) => {
            assert!(res.conditioned_flow.0 >= MACRO_BASE);
            assert_ne!(Some(res.conditioned_flow), macroflow, "per-pod macroflows");
        }
        Decision::Reject { cause, .. } => panic!("pod-1 join rejected: {cause}"),
        Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
    }
    // An unoffered class is a taxonomy rejection, not a wire error.
    match client
        .request(&class_request(200, 9, 0))
        .expect("round trip")
    {
        Decision::Reject { cause, .. } => assert_eq!(cause, Reject::UnknownClass),
        Decision::Install(_) => panic!("class 9 is not offered"),
        Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
    }

    let classes = server.class_usage();
    assert_eq!(classes.len(), 1, "one offered class in the directory");
    assert_eq!(classes[0].0, 1);
    assert_eq!(classes[0].1.members, 6, "5 on pod 0 + 1 on pod 1");
    assert!(classes[0].1.reserved_bps > 0);

    // A DRQ-ed member leaves its macroflow: the daemon answers with the
    // macroflow's *revised* reservation (an unsolicited DEC on the same
    // connection), at a rate below the 5-member aggregate.
    client.send_delete(FlowId(0)).expect("send DRQ");
    match client.recv_decision().expect("revised reservation DEC") {
        Decision::Install(res) => {
            assert_eq!(Some(res.conditioned_flow), macroflow);
            assert!(
                res.rate.as_bps() < last_rate,
                "aggregate must shrink after a leave: {} vs {last_rate}",
                res.rate.as_bps()
            );
        }
        Decision::Reject { cause, .. } => panic!("DRQ answered with a reject: {cause}"),
        Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
    }
    match client
        .request(&class_request(300, 1, 0))
        .expect("round trip")
    {
        Decision::Install(_) => {}
        Decision::Reject { cause, .. } => panic!("post-DRQ join rejected: {cause}"),
        Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
    }
    let classes = server.class_usage();
    assert_eq!(classes[0].1.members, 6, "one left, one joined");

    let report = server.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.admitted, 7);
    assert_eq!(report.rejected, 1, "the unknown-class request");
    assert_eq!(report.released, 1);
    assert_eq!(report.classes.len(), 1);
    assert_eq!(report.classes[0].1.members, 6);
}

/// The acceptance test for the telemetry tentpole: while load is in
/// flight, `GET /stats` answers with non-zero counters and non-empty
/// latency histograms, and `GET /metrics` carries the same series in
/// Prometheus text form; the final snapshot reconciles exactly with
/// what the client observed.
#[test]
fn stats_endpoint_serves_nonzero_counters_mid_load() {
    let (topo, routes) = topology(4);
    let config = ServerConfig {
        workers: 2,
        stats_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let server = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("start daemon");
    let addr = server.local_addr().to_string();
    let stats_addr: SocketAddr = server.stats_addr().expect("stats endpoint configured");

    // Background load: saturate every pod (30-flow bandwidth ceiling),
    // so the run produces both admissions and rejections.
    const REQUESTS: u64 = 4 * 40;
    let load = std::thread::spawn(move || -> (u64, u64) {
        let mut client = CopsClient::connect(&addr).expect("connect");
        let (mut admitted, mut rejected) = (0u64, 0u64);
        for k in 0..REQUESTS {
            let req = FlowRequest {
                flow: FlowId(k),
                profile: type0(),
                d_req: Nanos::from_millis(2_440),
                service: ServiceKind::PerFlow,
                path: PathId(k % 4),
            };
            match client.request(&req).expect("round trip") {
                Decision::Install(_) => admitted += 1,
                Decision::Reject { .. } => rejected += 1,
                Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
            }
        }
        (admitted, rejected)
    });

    // Poll the endpoint while the load runs: counters and histograms
    // must come alive mid-flight, not only after the fact.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mid = loop {
        let snap = fetch_stats(&stats_addr).expect("fetch /stats");
        if snap.metrics.admitted > 0 && snap.metrics.decision_ns_merged().count > 0 {
            break snap;
        }
        assert!(
            Instant::now() < deadline,
            "stats never showed live counters; last: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(mid.metrics.admitted > 0);
    let mid_decisions = mid.metrics.decision_ns_merged();
    assert!(!mid_decisions.buckets.is_empty(), "histogram has buckets");
    assert_eq!(
        mid_decisions.buckets.iter().map(|b| b.count).sum::<u64>(),
        mid_decisions.count
    );

    let text = fetch_metrics_text(&stats_addr).expect("fetch /metrics");
    assert!(text.contains("bb_admitted_total"), "{text}");
    assert!(
        text.contains("bb_decision_latency_ns_bucket"),
        "histogram series missing:\n{text}"
    );

    let (admitted, rejected) = load.join().expect("load thread");
    assert!(admitted > 0 && rejected > 0, "load must saturate the pods");

    // After the last DEC, the snapshot reconciles with the client.
    let fin = fetch_stats(&stats_addr).expect("final /stats");
    assert_eq!(fin.metrics.admitted, admitted);
    assert_eq!(fin.metrics.rejected, rejected);
    assert_eq!(fin.metrics.decided(), REQUESTS);
    assert_eq!(fin.metrics.decision_ns_merged().count, REQUESTS);
    assert_eq!(fin.metrics.setup_ns.count, REQUESTS);
    assert_eq!(fin.metrics.overloaded, 0, "closed-loop load never sheds");

    let report = server.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.admitted, admitted);

    // The endpoint dies with the daemon.
    assert!(fetch_stats(&stats_addr).is_err());
}

/// Regression test for contingency expiries under sustained load: a
/// bounding-policy grant must be released by the worker's normal drain
/// loop while the shard is continuously busy — the 20 ms idle beat,
/// which previously was the only tick driver, never fires here.
#[test]
fn bounding_expiries_fire_while_the_shard_stays_busy() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use bb_core::contingency::ContingencyPolicy;

    // A short-burst profile keeps the eq.-17 bounding period well under
    // a second (t_on = 8 kb / 50 kb/s = 160 ms), so the grant posted by
    // the leave below expires while the busy loop is still running.
    let short = TrafficProfile::new(
        Bits::from_bits(8_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(125),
    )
    .unwrap();

    let (topo, routes) = topology(1);
    let config = ServerConfig {
        workers: 1, // single shard: the busy loop starves exactly the worker that owes the tick
        stats_addr: Some("127.0.0.1:0".to_string()),
        broker: BrokerConfig {
            classes: vec![ClassSpec {
                id: 1,
                d_req: Nanos::from_secs(20),
                cd: Nanos::from_millis(100),
            }],
            contingency: ContingencyPolicy::Bounding,
            ..BrokerConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("start daemon");
    let addr = server.local_addr().to_string();
    let stats_addr: SocketAddr = server.stats_addr().expect("stats endpoint configured");

    // Saturate the worker *before* creating the grant, so there is no
    // idle window anywhere between grant and expiry: a closed loop of
    // per-flow requests keeps jobs arriving every round trip, far
    // inside the 20 ms idle-beat timeout.
    let stop = Arc::new(AtomicBool::new(false));
    let busy = {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = CopsClient::connect(&addr).expect("connect busy client");
            let mut k = 1_000u64;
            while !stop.load(Ordering::Relaxed) {
                let req = FlowRequest {
                    flow: FlowId(k),
                    profile: type0(),
                    d_req: Nanos::from_millis(2_440),
                    service: ServiceKind::PerFlow,
                    path: PathId(0),
                };
                k += 1;
                // Admit or reject, either way the worker stays busy.
                let _ = client.request(&req).expect("round trip");
            }
        })
    };

    // Two members join the class, one leaves: the leave transient posts
    // a bounding-policy grant (Δr = r^α − r^{α'} > 0) with a timer.
    let mut client = CopsClient::connect(&addr).expect("connect");
    for k in 0..2u64 {
        let req = FlowRequest {
            flow: FlowId(k),
            profile: short,
            d_req: Nanos::from_secs(20),
            service: ServiceKind::Class(1),
            path: PathId(0),
        };
        match client.request(&req).expect("round trip") {
            Decision::Install(_) => {}
            Decision::Reject { cause, .. } => panic!("join {k} rejected: {cause}"),
            Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
        }
    }
    client.send_delete(FlowId(0)).expect("send DRQ");
    match client.recv_decision().expect("revised reservation DEC") {
        Decision::Install(res) => assert!(
            res.contingency_expires.is_some(),
            "bounding policy must stamp the leave grant with an expiry"
        ),
        other => panic!("DRQ answered with {other:?}"),
    }

    // The grant must expire and be released while the load still runs —
    // processed by the drain loop, since the idle beat is starved.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = fetch_stats(&stats_addr).expect("fetch /stats");
        let expiries: u64 = snap.metrics.shards.iter().map(|s| s.grant_expiries).sum();
        if expiries >= 1 {
            assert!(
                snap.metrics.shards.iter().map(|s| s.grants).sum::<u64>() >= 1,
                "expired grants must have been counted as granted first"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "bounding grant never expired under sustained load; last: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    stop.store(true, Ordering::Relaxed);
    busy.join().expect("busy client thread");
    let report = server.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
}
