//! Durability integration tests over real TCP: graceful shutdown must
//! persist every acknowledged decision (in-flight commit batches are
//! drained before the final flush/snapshot), and a SIGKILL'd daemon
//! must recover its journal tail on restart — with the union of pre-
//! and post-crash decisions matching a serial broker fed the same
//! request order.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use bb_core::broker::{Broker, BrokerConfig};
use bb_core::cops::Decision;
use bb_core::signaling::{FlowRequest, Reject, ServiceKind};
use bb_core::PathId;
use bb_server::{BbServer, CopsClient, DurableOptions, ServerConfig};
use netsim::topology::{LinkId, SchedulerSpec, Topology};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

const PODS: usize = 8;
const HOPS: usize = 3;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn topology() -> (Topology, Vec<Vec<LinkId>>) {
    Topology::pod_chains(
        PODS,
        HOPS,
        Rate::from_bps(1_500_000),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    )
}

fn request(flow: u64, pod: u64) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: type0(),
        d_req: Nanos::from_millis(2_440),
        service: ServiceKind::PerFlow,
        path: PathId(pod),
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb-durable-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        durable: Some(DurableOptions {
            data_dir: dir.to_path_buf(),
            wal_flush: Duration::from_millis(1),
            // Never snapshot mid-run: shutdown (or crash recovery) has
            // to cope with the whole journal.
            snapshot_every: 1_000_000,
        }),
        ..ServerConfig::default()
    }
}

/// Satellite regression: decisions acknowledged right before shutdown —
/// commit batches possibly still unflushed — must survive the restart.
/// The shutdown path drains workers first, then flushes and snapshots.
#[test]
fn graceful_shutdown_persists_every_acknowledged_decision() {
    let dir = scratch("graceful");
    let (topo, routes) = topology();
    let config = durable_config(&dir);

    let server = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("start");
    let mut client = CopsClient::connect(&server.local_addr().to_string()).expect("connect");
    // Ten admissions across pods, one release, and a final admission
    // acknowledged immediately before shutdown — no flush interval
    // elapses for that last batch.
    for i in 0..10u64 {
        match client.request(&request(i, i % PODS as u64)).expect("req") {
            Decision::Install(_) => {}
            other => panic!("pods are empty, yet {other:?}"),
        }
    }
    // A successful per-flow DRQ carries no reply; the round trip of the
    // next request proves the reader dispatched it (shutdown drains the
    // shard queues before the final flush, so enqueued means applied).
    client.send_delete(FlowId(3)).expect("DRQ");
    match client.request(&request(99, 0)).expect("req") {
        Decision::Install(_) => {}
        other => panic!("last-second admission failed: {other:?}"),
    }
    drop(client);
    let report = server.shutdown();
    assert_eq!(
        report.resident_flows, 10,
        "10 admitted + 1 more - 1 released"
    );
    assert!(report.failures.is_clean(), "{:?}", report.failures);

    // Restart over the same directory: every acknowledged admission is
    // resident again (duplicate ids are refused), the released flow is
    // gone (its seat re-admits), and the counters picked up where the
    // first run stopped.
    let server = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("restart");
    let mut client = CopsClient::connect(&server.local_addr().to_string()).expect("connect");
    for i in (0..10u64).chain([99]) {
        if i == 3 {
            continue;
        }
        // Same pod as the original admission: duplicate detection lives
        // in the owning shard's MIB.
        let pod = if i == 99 { 0 } else { i % PODS as u64 };
        match client.request(&request(i, pod)).expect("req") {
            Decision::Reject { cause, .. } => {
                assert_eq!(cause, Reject::DuplicateFlow, "flow {i} must have survived");
            }
            other => panic!("flow {i} was lost across restart: {other:?}"),
        }
    }
    // The released flow's id is free again: its release was journaled.
    match client.request(&request(3, 3)).expect("req") {
        Decision::Install(res) => assert_eq!(res.flow, FlowId(3)),
        other => panic!("released seat must be re-admittable, got {other:?}"),
    }
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.resident_flows, 11, "10 recovered + 1 re-admission");
    assert!(report.failures.is_clean(), "{:?}", report.failures);

    let _ = fs::remove_dir_all(&dir);
}

struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_daemon(dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bb-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--pods",
            "8",
            "--hops",
            "3",
            "--workers",
            "2",
            "--stats-addr",
            "",
            "--wal-flush-ms",
            "1",
            "--snapshot-every",
            "1000000",
            "--data-dir",
        ])
        .arg(dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn bb-server");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let addr = loop {
        let mut line = String::new();
        if stdout.read_line(&mut line).expect("read startup line") == 0 {
            panic!("bb-server exited before announcing its address");
        }
        if let Some(rest) = line.strip_prefix("bb-server listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    };
    Daemon {
        child,
        addr,
        stdout,
    }
}

impl Daemon {
    /// Reads startup lines until the recovery summary and returns how
    /// many journal records the daemon replayed.
    fn replayed_records(&mut self) -> u64 {
        loop {
            let mut line = String::new();
            if self.stdout.read_line(&mut line).expect("read line") == 0 {
                panic!("bb-server exited before printing its recovery summary");
            }
            if let Some(rest) = line.split("recovery replayed ").nth(1) {
                return rest
                    .split_whitespace()
                    .next()
                    .expect("count token")
                    .parse()
                    .expect("replayed count");
            }
        }
    }

    fn quit(mut self) {
        if let Some(mut stdin) = self.child.stdin.take() {
            let _ = stdin.write_all(b"quit\n");
        }
        let _ = self.child.wait();
    }
}

/// Crash injection: SIGKILL the daemon process mid-run — no shutdown
/// path, no final snapshot — restart it over the same directory, and
/// check the union of pre- and post-crash decisions against a serial
/// broker fed the same request order.
#[test]
fn sigkill_recovery_matches_the_serial_broker_across_the_crash() {
    let dir = scratch("sigkill");

    // Phase 1: drive pod 0 past its 30-seat bandwidth ceiling (so the
    // journal holds rejects too) and spread a few flows elsewhere.
    let phase1: Vec<FlowRequest> = (0..35u64)
        .map(|i| request(i, 0))
        .chain((100..110u64).map(|i| request(i, 1 + i % 7)))
        .collect();
    let mut daemon = spawn_daemon(&dir);
    assert_eq!(daemon.replayed_records(), 0, "fresh directory");
    let mut observed: Vec<(FlowId, DecisionKey)> = Vec::new();
    {
        let mut client = CopsClient::connect(&daemon.addr).expect("connect");
        for req in &phase1 {
            let decision = client.request(req).expect("round trip");
            observed.push((req.flow, key_of(decision)));
        }
    }
    // Let the group-commit flusher (1 ms interval) sync the tail, then
    // pull the plug: SIGKILL, no drop handlers, no shutdown.
    std::thread::sleep(Duration::from_millis(200));
    daemon.child.kill().expect("SIGKILL");
    let _ = daemon.child.wait();

    // Phase 2 on a restarted daemon: duplicates of every phase-1 id
    // (admitted ones must now refuse as duplicates), plus fresh
    // admissions into the capacity that should remain.
    let phase2: Vec<FlowRequest> = phase1
        .iter()
        .cloned()
        .chain((200..210u64).map(|i| request(i, 1 + i % 7)))
        .collect();
    let mut daemon = spawn_daemon(&dir);
    let replayed = daemon.replayed_records();
    assert!(
        replayed >= phase1.len() as u64,
        "a crashed daemon recovers from its journal alone; replayed only {replayed}"
    );
    {
        let mut client = CopsClient::connect(&daemon.addr).expect("connect");
        for req in &phase2 {
            let decision = client.request(req).expect("round trip");
            observed.push((req.flow, key_of(decision)));
        }
    }
    daemon.quit();

    // Serial ground truth: one broker, both phases in order. A single
    // client per phase keeps the daemon's per-pod order equal to the
    // stream order.
    let (topo, routes) = topology();
    let mut serial = Broker::new(topo, BrokerConfig::default());
    for route in &routes {
        serial.register_route(route);
    }
    let mut expected: Vec<(FlowId, DecisionKey)> = Vec::new();
    let mut duplicates = 0u64;
    for req in phase1.iter().chain(&phase2) {
        let key = match serial.request(Time::ZERO, req) {
            Ok(res) => DecisionKey::Admit {
                rate_bps: res.rate.as_bps(),
                delay_ns: res.delay.as_nanos(),
            },
            Err(cause) => {
                if cause == Reject::DuplicateFlow {
                    duplicates += 1;
                }
                DecisionKey::Deny(cause)
            }
        };
        expected.push((req.flow, key));
    }
    assert!(duplicates >= 30, "phase 2 must re-offer persisted flows");
    assert_eq!(
        observed, expected,
        "pre/post-crash decision union diverged from the serial broker"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum DecisionKey {
    Admit { rate_bps: u64, delay_ns: u64 },
    Deny(Reject),
}

fn key_of(decision: Decision) -> DecisionKey {
    match decision {
        Decision::Install(res) => DecisionKey::Admit {
            rate_bps: res.rate.as_bps(),
            delay_ns: res.delay.as_nanos(),
        },
        Decision::Reject { cause, .. } => DecisionKey::Deny(cause),
        Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow decision for {flow}"),
    }
}
