//! End-to-end daemon test over real TCP: four concurrent edge-router
//! clients drive pods to saturation, and every decision the daemon
//! makes must equal a serial [`Broker`] fed the same per-pod request
//! order — the paper's admission semantics are untouched by the
//! concurrent deployment shell.

use std::collections::HashMap;

use bb_core::broker::{Broker, BrokerConfig};
use bb_core::cops::Decision;
use bb_core::signaling::{FlowRequest, Reject, ServiceKind};
use bb_core::PathId;
use bb_server::{BbServer, CopsClient, ServerConfig};
use netsim::topology::{LinkId, SchedulerSpec, Topology};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

const PODS: usize = 8;
const HOPS: usize = 3;
const CLIENTS: u64 = 4;
/// Bandwidth-bound pod capacity: 1.5 Mb/s / 50 kb/s = 30 flows, so 40
/// requests per owned pod guarantees saturation with rejections.
const PER_POD: usize = 40;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn topology() -> (Topology, Vec<Vec<LinkId>>) {
    Topology::pod_chains(
        PODS,
        HOPS,
        Rate::from_bps(1_500_000),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    )
}

/// Client `c`'s request stream: `PER_POD` admissions attempted on each
/// pod it owns, interleaved pod by pod.
fn stream_for(c: u64) -> Vec<FlowRequest> {
    let owned: Vec<u64> = (0..PODS as u64).filter(|p| p % CLIENTS == c).collect();
    (0..owned.len() * PER_POD)
        .map(|k| FlowRequest {
            flow: FlowId((c << 32) | k as u64),
            profile: type0(),
            d_req: Nanos::from_millis(2_440),
            service: ServiceKind::PerFlow,
            path: PathId(owned[k % owned.len()]),
        })
        .collect()
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Outcome {
    Admit { rate_bps: u64, delay_ns: u64 },
    Deny(Reject),
}

fn outcome_of(decision: Decision) -> Outcome {
    match decision {
        Decision::Install(res) => Outcome::Admit {
            rate_bps: res.rate.as_bps(),
            delay_ns: res.delay.as_nanos(),
        },
        Decision::Reject { cause, .. } => Outcome::Deny(cause),
        Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow decision for {flow}"),
    }
}

#[test]
fn four_concurrent_clients_match_the_serial_broker_flow_for_flow() {
    let (topo, routes) = topology();
    let config = ServerConfig {
        workers: 3, // deliberately coprime with CLIENTS: shards serve several clients
        queue_depth: 256,
        ..ServerConfig::default()
    };
    let server = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("start daemon");
    let addr = server.local_addr().to_string();

    // Four closed-loop clients, each owning pods p where p % 4 == c.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || -> HashMap<FlowId, Outcome> {
                let mut client = CopsClient::connect(&addr).expect("connect");
                stream_for(c)
                    .iter()
                    .map(|req| {
                        let decision = client.request(req).expect("round trip");
                        (req.flow, outcome_of(decision))
                    })
                    .collect()
            })
        })
        .collect();
    let mut observed: HashMap<FlowId, Outcome> = HashMap::new();
    for h in handles {
        observed.extend(h.join().expect("client thread"));
    }

    // Serial ground truth: same topology, same per-pod request order
    // (pods are owned by exactly one client, so client-by-client replay
    // preserves it).
    let (topo, routes) = topology();
    let mut serial = Broker::new(topo, BrokerConfig::default());
    for route in &routes {
        serial.register_route(route);
    }
    let mut expected_admits = 0u64;
    let mut total = 0u64;
    for c in 0..CLIENTS {
        for req in stream_for(c) {
            let expected = match serial.request(Time::ZERO, &req) {
                Ok(res) => {
                    expected_admits += 1;
                    Outcome::Admit {
                        rate_bps: res.rate.as_bps(),
                        delay_ns: res.delay.as_nanos(),
                    }
                }
                Err(cause) => Outcome::Deny(cause),
            };
            total += 1;
            assert_eq!(
                observed.get(&req.flow),
                Some(&expected),
                "daemon and serial broker disagree on {:?}",
                req.flow
            );
        }
    }
    assert_eq!(observed.len() as u64, total);
    // Every pod was driven past its 30-flow bandwidth ceiling.
    assert_eq!(expected_admits, (PODS * 30) as u64, "Table 2 per pod");
    assert!(
        expected_admits < total,
        "saturation must produce rejections"
    );

    let report = server.shutdown();
    assert_eq!(report.requested, total);
    assert_eq!(report.admitted, expected_admits);
    assert_eq!(report.overloaded, 0, "closed-loop load must never shed");
    assert_eq!(report.resident_flows, expected_admits);
    assert!(report.failures.is_clean(), "{:?}", report.failures);
}

#[test]
fn departures_over_drq_free_capacity_for_new_flows() {
    let (topo, routes) = topology();
    let server =
        BbServer::start("127.0.0.1:0", &topo, &routes, &ServerConfig::default()).expect("start");
    let mut client = CopsClient::connect(&server.local_addr().to_string()).expect("connect");

    // Fill pod 0 to its bandwidth ceiling.
    let mut last_admitted = None;
    let mut flow = 0u64;
    loop {
        let req = FlowRequest {
            flow: FlowId(flow),
            profile: type0(),
            d_req: Nanos::from_millis(2_440),
            service: ServiceKind::PerFlow,
            path: PathId(0),
        };
        match client.request(&req).expect("round trip") {
            Decision::Install(res) => {
                last_admitted = Some(res.flow);
                flow += 1;
            }
            Decision::Reject { cause, .. } => {
                assert_eq!(cause, Reject::Bandwidth);
                break;
            }
            Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
        }
        assert!(flow <= 40, "pod must saturate by 30 flows");
    }
    assert_eq!(flow, 30);

    // DRQ then a fresh REQ on the same connection: the daemon serves the
    // same pod from one shard queue, so the release is ordered before
    // the retry and the seat is free again.
    client
        .send_delete(last_admitted.expect("at least one admit"))
        .expect("send DRQ");
    let retry = FlowRequest {
        flow: FlowId(1_000),
        profile: type0(),
        d_req: Nanos::from_millis(2_440),
        service: ServiceKind::PerFlow,
        path: PathId(0),
    };
    match client.request(&retry).expect("round trip") {
        Decision::Install(res) => assert_eq!(res.flow, FlowId(1_000)),
        Decision::Reject { cause, .. } => panic!("seat was freed, yet rejected: {cause}"),
        Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
    }

    let report = server.shutdown();
    assert_eq!(report.released, 1);
    assert_eq!(report.resident_flows, 30);
    assert!(report.failures.is_clean(), "{:?}", report.failures);
}

/// A rejected admission must leave no `flow_owner` mapping behind: a
/// DRQ for the rejected flow (or any flow the daemon never saw) is
/// answered with an explicit unknown-flow decision instead of being
/// silently routed to a shard that never held it.
#[test]
fn rejected_flows_leave_no_mapping_and_drq_answers_unknown_flow() {
    let (topo, routes) = topology();
    let server =
        BbServer::start("127.0.0.1:0", &topo, &routes, &ServerConfig::default()).expect("start");
    let mut client = CopsClient::connect(&server.local_addr().to_string()).expect("connect");

    // Saturate pod 0 (30 seats), then collect one guaranteed rejection.
    let mut flow = 0u64;
    let rejected = loop {
        let req = FlowRequest {
            flow: FlowId(flow),
            profile: type0(),
            d_req: Nanos::from_millis(2_440),
            service: ServiceKind::PerFlow,
            path: PathId(0),
        };
        match client.request(&req).expect("round trip") {
            Decision::Install(_) => flow += 1,
            Decision::Reject { flow, cause } => {
                assert_eq!(cause, Reject::Bandwidth);
                break flow;
            }
            Decision::UnknownFlow { flow } => panic!("unexpected unknown-flow for {flow}"),
        }
        assert!(flow <= 40, "pod must saturate by 30 flows");
    };

    // DRQ for the rejected flow: the daemon never installed it, so no
    // shard owns it and the edge gets an explicit unknown-flow answer.
    client.send_delete(rejected).expect("send DRQ");
    match client.recv_decision().expect("read DEC") {
        Decision::UnknownFlow { flow } => assert_eq!(flow, rejected),
        other => panic!("expected unknown-flow, got {other:?}"),
    }

    // Same answer for a flow the daemon has never seen at all.
    client.send_delete(FlowId(9_999)).expect("send DRQ");
    match client.recv_decision().expect("read DEC") {
        Decision::UnknownFlow { flow } => assert_eq!(flow, FlowId(9_999)),
        other => panic!("expected unknown-flow, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.resident_flows, 30);
    assert_eq!(report.released, 0, "nothing real was released");
    assert!(report.failures.is_clean(), "{:?}", report.failures);
}
