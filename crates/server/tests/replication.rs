//! Replication integration tests over real TCP: a warm standby started
//! with `replica_of` bootstraps from the durable primary's snapshot,
//! tails its journal into a live broker image, and — on promotion —
//! serves every decision the primary ever acknowledged. The
//! semi-synchronous gate (DECs held until the standby's ack covers
//! their journal position) is exactly what makes "acknowledged" and
//! "replicated" the same set, so a promoted standby can lose no
//! admitted flow. When the standby dies instead, the primary must fail
//! open and keep serving alone.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use bb_core::cops::Decision;
use bb_core::signaling::{FlowRequest, Reject, ServiceKind};
use bb_core::PathId;
use bb_server::{
    fetch_metrics_text, fetch_stats, BbServer, CopsClient, DurableOptions, ServerConfig,
};
use netsim::topology::{LinkId, SchedulerSpec, Topology};
use qos_units::{Bits, Nanos, Rate};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

const PODS: usize = 8;
const HOPS: usize = 3;

fn topology() -> (Topology, Vec<Vec<LinkId>>) {
    Topology::pod_chains(
        PODS,
        HOPS,
        Rate::from_bps(1_500_000),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    )
}

fn request(flow: u64, pod: u64) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap(),
        d_req: Nanos::from_millis(2_440),
        service: ServiceKind::PerFlow,
        path: PathId(pod),
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb-repl-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        durable: Some(DurableOptions {
            data_dir: dir.to_path_buf(),
            wal_flush: Duration::from_millis(1),
            snapshot_every: 1_000_000,
        }),
        ..ServerConfig::default()
    }
}

fn standby_config(primary: &BbServer) -> ServerConfig {
    ServerConfig {
        // Shard layout must match the primary's: the journal is
        // per-shard and the REPL-HELLO carries the count.
        workers: 2,
        replica_of: Some(primary.local_addr().to_string()),
        ..ServerConfig::default()
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole property, in-process: every flow the primary
/// *acknowledged* is resident on the promoted standby (probed by
/// re-REQ — a resident flow refuses the duplicate), every flow deleted
/// before the failover is admittable again, and flows never admitted
/// admit fresh on the promoted daemon.
#[test]
fn promoted_standby_serves_every_acknowledged_flow() {
    let dir = scratch("promote");
    let (topo, routes) = topology();
    let primary =
        BbServer::start("127.0.0.1:0", &topo, &routes, &durable_config(&dir)).expect("primary");
    let standby =
        BbServer::start("127.0.0.1:0", &topo, &routes, &standby_config(&primary)).expect("standby");
    assert!(standby.is_replica());
    assert!(!standby.is_promoted());
    wait_until("the standby to attach", || primary.replication_attached());

    let mut client = CopsClient::connect(&primary.local_addr().to_string()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut admitted = Vec::new();
    for flow in 0..40u64 {
        match client
            .request(&request(flow, flow % PODS as u64))
            .expect("round trip")
        {
            Decision::Install(_) => admitted.push(flow),
            other => panic!("unexpected answer for flow {flow}: {other:?}"),
        }
    }
    assert!(admitted.len() >= 8, "workload too small to mean anything");
    // Tear down two mid-stream: the deletes replicate too, so the
    // promoted standby must treat them as *gone*, not resident.
    let deleted = [admitted.remove(0), admitted.remove(admitted.len() / 2)];
    for flow in deleted {
        client.send_delete(FlowId(flow)).expect("send DRQ");
    }
    // A per-flow DRQ gets no reply; wait for both releases to land (and
    // journal, and replicate) before sealing the failover.
    wait_until("both deletes to be released", || {
        primary.stats_snapshot().metrics.released == 2
    });
    drop(client);

    // The gate makes this deterministic: every DEC above was released
    // only after the standby acked (enqueued) its journal record, and
    // promotion drains the apply queues behind a barrier.
    let promoted = standby.promote().expect("promote the standby");
    assert!(standby.is_promoted());
    assert_eq!(standby.promote(), Some(promoted), "promotion is idempotent");

    let mut probe = CopsClient::connect(&promoted.to_string()).expect("connect to promoted");
    probe
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    for &flow in &admitted {
        // The residency probe: a resident flow refuses its duplicate.
        // An Install here would mean the admitted flow was LOST.
        match probe
            .request(&request(flow, flow % PODS as u64))
            .expect("probe")
        {
            Decision::Reject {
                cause: Reject::DuplicateFlow,
                ..
            } => {}
            other => panic!("flow {flow} lost in failover: probe answered {other:?}"),
        }
    }
    for flow in deleted {
        // Deleted before the failover: the standby applied the release,
        // so the flow admits again from scratch.
        match probe
            .request(&request(flow, flow % PODS as u64))
            .expect("probe")
        {
            Decision::Install(_) => {}
            other => panic!("deleted flow {flow} still resident after failover: {other:?}"),
        }
    }

    let snap = standby.stats_snapshot().metrics.repl;
    assert!(
        snap.applied_records as usize >= admitted.len(),
        "standby applied {} records for {} acknowledged admissions",
        snap.applied_records,
        admitted.len()
    );

    drop(probe);
    let report = standby.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    let report = primary.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    let _ = fs::remove_dir_all(&dir);
}

/// Killing the *primary* (ungraceful close of the replication link)
/// must auto-promote the standby — no operator in the loop — and the
/// primary's acknowledged flows survive onto it.
#[test]
fn standby_auto_promotes_when_the_primary_dies() {
    let dir = scratch("autopromote");
    let (topo, routes) = topology();
    let primary =
        BbServer::start("127.0.0.1:0", &topo, &routes, &durable_config(&dir)).expect("primary");
    let standby =
        BbServer::start("127.0.0.1:0", &topo, &routes, &standby_config(&primary)).expect("standby");
    wait_until("the standby to attach", || primary.replication_attached());

    let mut client = CopsClient::connect(&primary.local_addr().to_string()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut admitted = Vec::new();
    for flow in 0..12u64 {
        if let Decision::Install(_) = client
            .request(&request(flow, flow % PODS as u64))
            .expect("round trip")
        {
            admitted.push(flow);
        }
    }
    drop(client);

    // An in-process stand-in for SIGKILL: shutdown closes the
    // replication socket, which is all the standby can observe of a
    // dead primary either way.
    let report = primary.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);

    wait_until("the standby to auto-promote", || standby.is_promoted());
    let promoted = standby.promoted_addr().expect("promoted address");
    let mut probe = CopsClient::connect(&promoted.to_string()).expect("connect to promoted");
    probe
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    for &flow in &admitted {
        match probe
            .request(&request(flow, flow % PODS as u64))
            .expect("probe")
        {
            Decision::Reject {
                cause: Reject::DuplicateFlow,
                ..
            } => {}
            other => panic!("flow {flow} lost in auto-failover: {other:?}"),
        }
    }

    drop(probe);
    let report = standby.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(
        report.resident_flows,
        admitted.len() as u64,
        "promoted standby residency diverged from the acknowledged set"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A warm standby started with a stats address binds its telemetry
/// listener immediately and serves read-only `GET /stats` and
/// `GET /metrics` *from the replicated state* while still a standby —
/// an operator can watch apply lag without promoting anything.
#[test]
fn standby_serves_read_only_stats_from_replicated_state() {
    let dir = scratch("standbystats");
    let (topo, routes) = topology();
    let primary =
        BbServer::start("127.0.0.1:0", &topo, &routes, &durable_config(&dir)).expect("primary");
    let mut config = standby_config(&primary);
    config.stats_addr = Some("127.0.0.1:0".to_string());
    let standby = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("standby");
    let standby_stats = standby
        .stats_addr()
        .expect("a standby with a stats address binds its telemetry listener");
    wait_until("the standby to attach", || primary.replication_attached());

    let mut client = CopsClient::connect(&primary.local_addr().to_string()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut admitted = 0u64;
    for flow in 0..20u64 {
        if let Decision::Install(_) = client
            .request(&request(flow, flow % PODS as u64))
            .expect("round trip")
        {
            admitted += 1;
        }
    }
    assert!(admitted >= 8, "workload too small to mean anything");

    // The endpoint reflects the replicated image catching up with the
    // primary's acknowledged admissions — not a blank registry.
    wait_until("the standby to apply the replicated admissions", || {
        fetch_stats(&standby_stats)
            .map(|s| s.metrics.repl.applied_records >= admitted)
            .unwrap_or(false)
    });
    // The Prometheus rendering of the same state serves too.
    let text = fetch_metrics_text(&standby_stats).expect("standby /metrics");
    assert!(
        text.contains("bb_repl_applied_records_total"),
        "standby exposition is missing the apply counter:\n{text}"
    );
    // Read-only means read-only: serving stats promoted nothing.
    assert!(standby.is_replica());
    assert!(!standby.is_promoted());

    drop(client);
    let report = standby.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    let report = primary.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    let _ = fs::remove_dir_all(&dir);
}

/// The availability half of the design: when the *standby* dies, the
/// primary fails open — parked DECs release, the demotion is counted,
/// and admissions keep flowing with no standby to gate on.
#[test]
fn primary_fails_open_when_the_standby_dies() {
    let dir = scratch("failopen");
    let (topo, routes) = topology();
    let primary =
        BbServer::start("127.0.0.1:0", &topo, &routes, &durable_config(&dir)).expect("primary");
    let standby =
        BbServer::start("127.0.0.1:0", &topo, &routes, &standby_config(&primary)).expect("standby");
    wait_until("the standby to attach", || primary.replication_attached());

    let mut client = CopsClient::connect(&primary.local_addr().to_string()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    match client.request(&request(1, 1)).expect("gated admission") {
        Decision::Install(_) => {}
        other => panic!("expected a replicated admission, got {other:?}"),
    }

    let report = standby.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    wait_until("the primary to fail open", || {
        !primary.replication_attached()
    });

    // Serving continues, now ungated.
    match client.request(&request(2, 2)).expect("solo admission") {
        Decision::Install(_) => {}
        other => panic!("expected a solo admission after fail-open, got {other:?}"),
    }

    let snap = primary.stats_snapshot().metrics.repl;
    assert_eq!(snap.attached, 0);
    assert_eq!(snap.demotions, 1);
    assert_eq!(snap.lag_records, 0, "fail-open must clear the gate");

    drop(client);
    let report = primary.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.resident_flows, 2);
    let _ = fs::remove_dir_all(&dir);
}
