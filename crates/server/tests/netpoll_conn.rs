//! Integration tests for the event-driven connection layer: however
//! TCP fragments the COPS stream across readiness passes, the daemon's
//! decision stream must be byte-identical to coalesced delivery (the
//! blocking frame reader's view of the same bytes); mid-frame
//! disconnects must drop the partial frame silently; and the idle
//! deadline must close mid-frame stallers — and only them.
//!
//! Every test pins the workload to a single pod, so all requests land
//! on one shard and the DEC stream on one connection is strict FIFO —
//! the strongest comparison (raw reply bytes) is well-defined.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use bb_core::cops;
use bb_core::signaling::{FlowRequest, ServiceKind};
use bb_server::{BbServer, CopsClient, FrameReader, ServerConfig};
use netsim::topology::{LinkId, SchedulerSpec, Topology};
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn topology() -> (Topology, Vec<Vec<LinkId>>) {
    Topology::pod_chains(
        1,
        3,
        Rate::from_bps(1_500_000),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    )
}

fn request(flow: u64, d_req_ms: u64) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap(),
        d_req: Nanos::from_millis(d_req_ms),
        service: ServiceKind::PerFlow,
        path: bb_core::PathId(0),
    }
}

fn start_daemon() -> BbServer {
    let (topo, routes) = topology();
    BbServer::start("127.0.0.1:0", &topo, &routes, &ServerConfig::default()).expect("start daemon")
}

/// Writes `wire` to a fresh connection in the given chunks (a short
/// pause after each so the daemon genuinely sees them as separate
/// readiness passes), then reads exactly `expected` DEC frames and
/// returns their raw bytes in arrival order.
fn drive(addr: &str, wire: &[u8], chunks: &[usize], expected: usize) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");

    let mut at = 0;
    let mut cut = 0;
    while at < wire.len() {
        let step = if chunks.is_empty() {
            wire.len()
        } else {
            chunks[cut % chunks.len()].max(1).min(wire.len() - at)
        };
        cut += 1;
        stream.write_all(&wire[at..at + step]).expect("write chunk");
        at += step;
        if at < wire.len() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let mut reader = FrameReader::new();
    let mut replies = Vec::new();
    let mut frames = 0;
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(10);
    while frames < expected {
        assert!(Instant::now() < deadline, "timed out awaiting DEC frames");
        match stream.read(&mut chunk) {
            Ok(0) => panic!("daemon closed with {frames}/{expected} DECs delivered"),
            Ok(got) => {
                reader.extend(&chunk[..got]);
                while let Some(frame) = reader.next_frame().expect("daemon broke framing") {
                    replies.extend_from_slice(&frame);
                    frames += 1;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }
    replies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two fresh daemons fed the same request stream — one coalesced
    /// in a single write, one fragmented at arbitrary boundaries —
    /// answer with byte-identical DEC streams: the nonblocking decoder
    /// reassembles exactly what the blocking frame reader would.
    #[test]
    fn any_chunking_yields_byte_identical_decisions(
        flows in proptest::collection::vec((0u64..1_000, 1u64..5_000), 1..9),
        cuts in proptest::collection::vec(1usize..17, 1..6),
    ) {
        let wire: Vec<u8> = flows
            .iter()
            .flat_map(|&(f, d)| cops::encode_request(&request(f, d)).to_vec())
            .collect();

        let coalesced_daemon = start_daemon();
        let coalesced = drive(
            &coalesced_daemon.local_addr().to_string(),
            &wire,
            &[],
            flows.len(),
        );
        let report = coalesced_daemon.shutdown();
        prop_assert!(report.failures.is_clean(), "{:?}", report.failures);

        let chunked_daemon = start_daemon();
        let chunked = drive(
            &chunked_daemon.local_addr().to_string(),
            &wire,
            &cuts,
            flows.len(),
        );
        let report = chunked_daemon.shutdown();
        prop_assert!(report.failures.is_clean(), "{:?}", report.failures);

        prop_assert_eq!(coalesced, chunked);
    }
}

/// The literal worst case: every single byte of a multi-request stream
/// arrives in its own readiness pass, and the DEC stream still matches
/// coalesced delivery bit for bit.
#[test]
fn one_byte_dribble_yields_byte_identical_decisions() {
    let wire: Vec<u8> = [request(1, 2_440), request(2, 1_200), request(3, 900)]
        .iter()
        .flat_map(|r| cops::encode_request(r).to_vec())
        .collect();

    let coalesced_daemon = start_daemon();
    let coalesced = drive(&coalesced_daemon.local_addr().to_string(), &wire, &[], 3);
    let _ = coalesced_daemon.shutdown();

    let dribble_daemon = start_daemon();
    let dribbled = drive(&dribble_daemon.local_addr().to_string(), &wire, &[1], 3);
    let report = dribble_daemon.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);

    assert_eq!(coalesced, dribbled);
}

/// A connection that dies mid-frame — at every possible byte boundary
/// of the unfinished frame — loses only the partial frame: everything
/// complete before it was already answered, the daemon drops the tail
/// without error, and keeps serving new connections.
#[test]
fn mid_frame_disconnect_at_every_boundary_drops_only_the_partial_frame() {
    let server = start_daemon();
    let addr = server.local_addr().to_string();
    let partial = cops::encode_request(&request(99_999, 2_440)).to_vec();

    for prefix in 1..partial.len() {
        let full = cops::encode_request(&request(prefix as u64, 2_440)).to_vec();
        let mut wire = full;
        wire.extend_from_slice(&partial[..prefix]);
        // Expect exactly one DEC (for the complete frame), then drop
        // the socket with `prefix` bytes of the next frame buffered
        // server-side.
        drive(&addr, &wire, &[], 1);
    }

    // The daemon is unharmed: a fresh connection still round-trips.
    let mut client = CopsClient::connect(&addr).expect("connect after disconnect storm");
    client
        .request(&request(1_000_000, 2_440))
        .expect("daemon still serves");

    let report = server.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    // One decision per loop iteration plus the final probe; the
    // dribbled partial frames produced none.
    assert_eq!(report.requested, partial.len() as u64);
}

/// `idle_timeout` closes connections stalled mid-frame (and counts
/// them), while connections idling at a frame boundary — however long
/// — are left alone: the deadline arms only while a partial frame is
/// buffered.
#[test]
fn idle_deadline_closes_mid_frame_stallers_only() {
    let (topo, routes) = topology();
    let config = ServerConfig {
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    };
    let server = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("start daemon");
    let addr = server.local_addr().to_string();

    // A well-behaved edge: full request, DEC, then a long frame-boundary
    // silence — far past the idle deadline.
    let mut polite = CopsClient::connect(&addr).expect("connect");
    polite.request(&request(1, 2_440)).expect("round trip");

    // A slow-loris edge: half a frame, then silence. The daemon must
    // hang up on it within a few deadline periods.
    let mut loris = TcpStream::connect(&addr).expect("connect");
    loris.set_nodelay(true).expect("nodelay");
    let frame = cops::encode_request(&request(2, 2_440)).to_vec();
    loris
        .write_all(&frame[..frame.len() / 2])
        .expect("half frame");
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut buf = [0u8; 64];
    let closed_at = Instant::now();
    match loris.read(&mut buf) {
        Ok(0) => {}
        other => panic!("expected idle close (EOF), got {other:?}"),
    }
    assert!(
        closed_at.elapsed() < Duration::from_secs(4),
        "idle close took {:?}",
        closed_at.elapsed()
    );

    // The polite connection survived the same wall-clock stretch of
    // silence, because it idles at a frame boundary.
    polite.request(&request(3, 2_440)).expect("still serving");

    let conns = server.stats_snapshot().metrics.conns;
    assert_eq!(conns.idle_closed, 1, "exactly the loris was reaped");

    let report = server.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.requested, 2, "the dropped half-frame never counted");
}
