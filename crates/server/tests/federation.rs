//! Integration tests for broker-to-broker federation: a chain of
//! peered single-domain daemons must be observationally equivalent to
//! one flat broker over the union topology — flow for flow — and every
//! abort path (local refusal after downstream booked, dead peer, slow
//! peer reaped mid-frame) must leave zero bookings in every domain.
//!
//! The chains here are real daemons wired over loopback TCP, launched
//! terminal-first exactly as `bb-server --peer` chains are, and driven
//! sequentially through one edge client so the serial comparison is
//! well-defined.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::{Duration, Instant};

use bb_core::broker::{Broker, BrokerConfig};
use bb_core::cops::{self, Decision, PeerAnswer};
use bb_core::signaling::{FlowRequest, Reject, ServiceKind};
use bb_server::{BbServer, CopsClient, ServerConfig};
use netsim::topology::{LinkId, SchedulerSpec, Topology};
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

const PODS: usize = 2;
const HOPS: usize = 3;
const DOMAINS: usize = 3;

fn pod_topology(link_bps: u64) -> (Topology, Vec<Vec<LinkId>>) {
    Topology::pod_chains(
        PODS,
        HOPS,
        Rate::from_bps(link_bps),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    )
}

/// A flow whose minimum feasible rate depends on the accumulated hop
/// count at moderate deadlines — so a domain that forgets to add its
/// segment to the union totals grants a visibly wrong rate.
fn request(flow: u64, d_req_ms: u64) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap(),
        d_req: Nanos::from_millis(d_req_ms),
        service: ServiceKind::PerFlow,
        path: bb_core::PathId(flow % PODS as u64),
    }
}

/// Starts a chain of `domains` daemons terminal-first, each dialing
/// the one started before it, and returns them edge-first (index 0 is
/// the domain clients talk to, the last is the terminal). The edge
/// domain's links carry `edge_bps`; every downstream domain runs the
/// paper's 1.5 Mb/s links — a narrower edge forces the edge's own
/// commit to refuse *after* downstream booked, exercising rollback.
fn start_chain(domains: usize, edge_bps: u64) -> Vec<BbServer> {
    let mut servers: Vec<BbServer> = Vec::new();
    let mut peer: Option<String> = None;
    for i in 0..domains {
        let bps = if i == domains - 1 {
            edge_bps
        } else {
            1_500_000
        };
        let (topo, routes) = pod_topology(bps);
        let config = ServerConfig {
            peer: peer.take(),
            ..ServerConfig::default()
        };
        let srv = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("start domain");
        peer = Some(srv.local_addr().to_string());
        servers.push(srv);
    }
    servers.reverse();
    servers
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The federation equivalence property: a 3-domain peered chain
    /// answers every request — admissions with their exact ⟨r, d⟩
    /// pair, rejections with their exact cause — identically to one
    /// flat broker over the union topology (triple the hops, same
    /// links). Duplicate flows, infeasible deadlines, and bandwidth
    /// exhaustion are all in the driven mix, and afterwards every
    /// domain holds exactly the same number of resident flows.
    #[test]
    fn three_domain_chain_matches_flat_union_broker(
        reqs in proptest::collection::vec((0u64..64, 150u64..3_000), 1..64),
    ) {
        let servers = start_chain(DOMAINS, 1_500_000);
        let mut client =
            CopsClient::connect(&servers[0].local_addr().to_string()).expect("connect to edge");
        client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");

        let (union_topo, union_routes) = Topology::pod_chains(
            PODS,
            HOPS * DOMAINS,
            Rate::from_bps(1_500_000),
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        let mut flat = Broker::new(union_topo, BrokerConfig::default());
        for route in &union_routes {
            flat.register_route(route);
        }

        let mut expected_resident = 0u64;
        for &(flow, d_ms) in &reqs {
            let req = request(flow, d_ms);
            let got = client.request(&req).expect("edge round trip");
            match (got, flat.request(Time::ZERO, &req)) {
                (Decision::Install(res), Ok(serial)) => {
                    expected_resident += 1;
                    prop_assert_eq!(res.rate, serial.rate, "rate for flow {}", flow);
                    prop_assert_eq!(res.delay, serial.delay, "delay for flow {}", flow);
                }
                (Decision::Reject { cause, .. }, Err(expected)) => {
                    prop_assert_eq!(cause, expected, "cause for flow {}", flow);
                }
                (got, expected) => {
                    return Err(TestCaseError::fail(format!(
                        "flow {flow}: daemon said {got:?}, serial broker said {expected:?}"
                    )));
                }
            }
        }

        drop(client);
        // Edge first, terminal last — the edge's outbound peer link
        // drains before its downstream sees EOF.
        let reports: Vec<_> = servers.into_iter().map(BbServer::shutdown).collect();
        for (i, report) in reports.iter().enumerate() {
            prop_assert!(report.failures.is_clean(), "domain {i}: {:?}", report.failures);
            prop_assert_eq!(
                report.resident_flows, expected_resident,
                "domain {} residency diverged from the union broker", i
            );
        }
    }
}

/// An edge DRQ tears the reservation down in *every* domain: the
/// PEER-RELEASE propagates the whole chain, and the flow is admittable
/// again afterwards — at the same rate as the first time.
#[test]
fn release_propagates_down_the_whole_chain() {
    let servers = start_chain(DOMAINS, 1_500_000);
    let mut client =
        CopsClient::connect(&servers[0].local_addr().to_string()).expect("connect to edge");

    let first = match client.request(&request(5, 2_440)).expect("round trip") {
        Decision::Install(res) => res,
        other => panic!("expected install, got {other:?}"),
    };

    client.send_delete(FlowId(5)).expect("send DRQ");
    for (i, srv) in servers.iter().enumerate() {
        wait_until(&format!("domain {i} to release flow 5"), || {
            srv.stats_snapshot().metrics.released == 1
        });
    }

    // Fully torn down everywhere — the flow books again from scratch.
    let second = match client.request(&request(5, 2_440)).expect("round trip") {
        Decision::Install(res) => res,
        other => panic!("expected re-install after release, got {other:?}"),
    };
    assert_eq!(first.rate, second.rate);
    assert_eq!(first.delay, second.delay);

    drop(client);
    for (i, report) in servers.into_iter().map(BbServer::shutdown).enumerate() {
        assert!(
            report.failures.is_clean(),
            "domain {i}: {:?}",
            report.failures
        );
        assert_eq!(report.resident_flows, 1, "domain {i}");
    }
}

/// The hard abort path: downstream domains say yes and book
/// tentatively, then the *edge's own* commit refuses (its links are
/// narrower than the chain-computed rate). The compensating
/// PEER-RELEASE must unwind the tentative bookings in every downstream
/// domain — no booking left behind.
#[test]
fn edge_refusal_rolls_back_tentative_downstream_bookings() {
    // 30 kb/s edge links cannot carry the flow's 50 kb/s token rate,
    // so the edge refuses with Bandwidth after both downstream domains
    // already booked. The deadline is generous (10 s) because narrow
    // links also inflate the edge's fixed delay terms — a tight one
    // would refuse DelayInfeasible at the terminal, before any
    // booking, and never reach the rollback path under test.
    let servers = start_chain(DOMAINS, 30_000);
    let mut client =
        CopsClient::connect(&servers[0].local_addr().to_string()).expect("connect to edge");

    match client.request(&request(1, 10_000)).expect("round trip") {
        Decision::Reject {
            cause: Reject::Bandwidth,
            ..
        } => {}
        other => panic!("expected Bandwidth refusal from the narrow edge, got {other:?}"),
    }

    // The compensation is asynchronous; both downstream domains must
    // observe it as a release of their tentative booking.
    for (i, srv) in servers.iter().enumerate().skip(1) {
        wait_until(
            &format!("domain {i} to unwind its tentative booking"),
            || srv.stats_snapshot().metrics.released == 1,
        );
    }

    drop(client);
    for (i, report) in servers.into_iter().map(BbServer::shutdown).enumerate() {
        assert!(
            report.failures.is_clean(),
            "domain {i}: {:?}",
            report.failures
        );
        assert_eq!(
            report.resident_flows, 0,
            "domain {i} kept a booking for a refused flow"
        );
    }
}

/// A dead downstream peer fails admissions closed: the edge answers
/// `PeerUnreachable` (wire code 9), books nothing, and counts the
/// refusal in its federation telemetry.
#[test]
fn dead_peer_refuses_admissions_without_booking_anywhere() {
    let mut servers = start_chain(2, 1_500_000);
    let terminal = servers.pop().expect("terminal domain");
    let edge = servers.pop().expect("edge domain");

    // Kill the downstream domain, then give the edge's io loop a
    // moment to observe the EOF (either ordering ends in the same
    // refusal — a parked admission is drained by the close, a later
    // one is refused on send).
    let report = terminal.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    std::thread::sleep(Duration::from_millis(200));

    let mut client = CopsClient::connect(&edge.local_addr().to_string()).expect("connect to edge");
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    match client.request(&request(9, 2_440)).expect("round trip") {
        Decision::Reject {
            cause: Reject::PeerUnreachable,
            ..
        } => {}
        other => panic!("expected PeerUnreachable, got {other:?}"),
    }

    let fed = edge.stats_snapshot().metrics.fed;
    let unreachable = fed
        .peer_rejects
        .iter()
        .find(|r| r.reason == "peer_unreachable")
        .map_or(0, |r| r.count);
    assert!(unreachable >= 1, "telemetry missed the refusal: {fed:?}");
    assert_eq!(fed.in_flight, 0, "nothing may stay parked on a dead link");

    drop(client);
    let report = edge.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.resident_flows, 0, "a refused flow left residue");
    // The refusal fails closed at the connection layer — no shard
    // broker ever sees the request, so admission counters stay zero
    // and the only trace is the peer_rejects series asserted above.
    assert_eq!(report.requested, 0);
}

/// PEER-COMMIT carries the terminal-computed ⟨r, d⟩, and every domain
/// asserts it against its own tentative booking. A commit that matches
/// finalizes the booking; a commit that disagrees means the chain has
/// diverged on what was reserved, and the only safe move is to release
/// the booking and count `bb_fed_commit_mismatches_total` — the flow
/// must not stay resident under a rate the chain disputes.
#[test]
fn mismatched_peer_commit_releases_the_booking_and_counts_it() {
    use bb_core::cops::PeerCommit;
    use bb_server::FrameReader;

    let (topo, routes) = pod_topology(1_500_000);
    let srv = BbServer::start("127.0.0.1:0", &topo, &routes, &ServerConfig::default())
        .expect("start terminal domain");

    // This test *is* the upstream broker: a raw socket speaking the
    // peer protocol at the terminal domain.
    let mut upstream = std::net::TcpStream::connect(srv.local_addr()).expect("dial terminal");
    upstream.set_nodelay(true).expect("nodelay");
    upstream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");

    let mut reader = FrameReader::new();
    let read_answer = |sock: &mut std::net::TcpStream, reader: &mut FrameReader| {
        let mut buf = [0u8; 1024];
        loop {
            if let Some(wire) = reader.next_frame().expect("well-formed answer") {
                let mut wire = wire;
                let frame = cops::decode_frame(&mut wire).expect("decode frame");
                return cops::decode_peer_answer(&frame).expect("decode answer");
            }
            let n = sock.read(&mut buf).expect("read answer");
            assert!(n > 0, "terminal hung up mid-admission");
            reader.extend(&buf[..n]);
        }
    };
    let admit = |flow: u64, upstream: &mut std::net::TcpStream, reader: &mut FrameReader| {
        let req = request(flow, 2_440);
        upstream
            .write_all(&cops::encode_peer_decide(&cops::PeerDecide {
                flow: req.flow,
                profile: req.profile,
                d_req: req.d_req,
                path: req.path,
                h_acc: HOPS as u64,
                d_acc: Nanos::from_millis(1),
            }))
            .expect("send PEER-DEC");
        match read_answer(upstream, reader) {
            PeerAnswer::Ok {
                flow: f,
                rate,
                delay,
            } => {
                assert_eq!(f, req.flow);
                (rate, delay)
            }
            other => panic!("expected a tentative booking for flow {flow}, got {other:?}"),
        }
    };

    // Flow 20: the commit echoes the answered pair exactly — the
    // booking finalizes, nothing releases, nothing is counted.
    let (rate, delay) = admit(20, &mut upstream, &mut reader);
    upstream
        .write_all(&cops::encode_peer_commit(&PeerCommit {
            flow: FlowId(20),
            rate,
            delay,
        }))
        .expect("send matching commit");

    // Flow 21: the commit claims a different rate than this domain
    // booked. The domain must release the booking and count it.
    let (rate, delay) = admit(21, &mut upstream, &mut reader);
    upstream
        .write_all(&cops::encode_peer_commit(&PeerCommit {
            flow: FlowId(21),
            rate: Rate::from_bps(rate.as_bps() + 1),
            delay,
        }))
        .expect("send mismatched commit");

    wait_until(
        "the mismatch to be counted and the booking released",
        || {
            let m = srv.stats_snapshot().metrics;
            m.fed.commit_mismatches == 1 && m.released == 1
        },
    );

    drop(upstream);
    let report = srv.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(
        report.resident_flows, 1,
        "the matched commit must stay resident and the mismatched one must not"
    );
}

/// The DeadlineWheel re-arms on *outbound* peer connections exactly as
/// it does on inbound edges: a downstream peer that answers with half
/// a frame and stalls is reaped by `--idle-timeout-ms`, the reap
/// increments `bb_conn_idle_closed_total`, and the parked admission is
/// drained to the client as `PeerUnreachable` — while the
/// frame-boundary-idle client connection is left alone.
#[test]
fn slow_peer_mid_frame_is_reaped_by_the_idle_wheel() {
    // A test-controlled fake peer: accepts the edge's dial, swallows
    // the PEER-DEC query, answers with HALF an install-shaped frame,
    // then stalls until the edge hangs up.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake peer");
    let peer_addr = listener.local_addr().expect("fake peer addr").to_string();
    let fake_peer = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().expect("accept the edge's dial");
        sock.set_nodelay(true).expect("nodelay");
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut buf = [0u8; 1024];
        let got = sock.read(&mut buf).expect("read the PEER-DEC query");
        assert!(got > 0, "the edge sent nothing");
        let answer = cops::encode_peer_answer(&PeerAnswer::Ok {
            flow: FlowId(7),
            rate: Rate::from_bps(50_000),
            delay: Nanos::ZERO,
        });
        sock.write_all(&answer[..answer.len() / 2])
            .expect("write half the answer");
        // Stall mid-frame; the edge must hang up on us.
        let mut eof = [0u8; 64];
        matches!(sock.read(&mut eof), Ok(0))
    });

    let (topo, routes) = pod_topology(1_500_000);
    let config = ServerConfig {
        peer: Some(peer_addr),
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    };
    let edge = BbServer::start("127.0.0.1:0", &topo, &routes, &config).expect("start edge");

    let mut client = CopsClient::connect(&edge.local_addr().to_string()).expect("connect to edge");
    client
        .set_timeout(Some(Duration::from_secs(8)))
        .expect("timeout");
    let asked_at = Instant::now();
    match client.request(&request(7, 2_440)).expect("round trip") {
        Decision::Reject {
            cause: Reject::PeerUnreachable,
            ..
        } => {}
        other => panic!("expected PeerUnreachable after the reap, got {other:?}"),
    }
    assert!(
        asked_at.elapsed() < Duration::from_secs(4),
        "reap took {:?} — the wheel never armed on the outbound link",
        asked_at.elapsed()
    );

    let metrics = edge.stats_snapshot().metrics;
    assert_eq!(
        metrics.conns.idle_closed, 1,
        "exactly the mid-frame peer link was reaped"
    );
    assert_eq!(metrics.fed.in_flight, 0);

    assert!(
        fake_peer.join().expect("fake peer thread"),
        "the fake peer saw no EOF — the edge never hung up"
    );

    // The client connection idled at a frame boundary through all of
    // this and must still be served.
    match client.request(&request(8, 2_440)).expect("still serving") {
        Decision::Reject {
            cause: Reject::PeerUnreachable,
            ..
        } => {}
        other => panic!("the dead link must stay down, got {other:?}"),
    }

    drop(client);
    let report = edge.shutdown();
    assert!(report.failures.is_clean(), "{:?}", report.failures);
    assert_eq!(report.resident_flows, 0, "a refused flow left residue");
}
