//! Property tests for the stream framing layer — the COPS corruption
//! test from `bb-core` extended to the transport: arbitrary chunking
//! must never change what is decoded, and corrupt bytes must never
//! panic the reader.

use bb_core::cops;
use bb_core::signaling::{FlowRequest, ServiceKind};
use bb_server::frame::{FrameError, FrameReader, MAX_FRAME};
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn request(flow: u64, path: u64, d_req_ms: u64) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap(),
        d_req: Nanos::from_millis(d_req_ms),
        service: ServiceKind::PerFlow,
        path: bb_core::PathId(path),
    }
}

/// Splits `wire` into chunks whose sizes cycle through `cuts`, feeding
/// each to the reader and collecting every completed frame.
fn feed_chunked(wire: &[u8], cuts: &[usize]) -> Result<Vec<Vec<u8>>, FrameError> {
    let mut reader = FrameReader::new();
    let mut frames = Vec::new();
    let mut at = 0;
    let mut cut = 0;
    while at < wire.len() {
        let step = cuts[cut % cuts.len()].max(1).min(wire.len() - at);
        cut += 1;
        reader.extend(&wire[at..at + step]);
        at += step;
        while let Some(frame) = reader.next_frame()? {
            frames.push(frame.to_vec());
        }
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// However TCP fragments the stream, the reader yields exactly the
    /// frames that were written, in order, bit for bit.
    #[test]
    fn any_chunking_reassembles_the_same_frames(
        flows in proptest::collection::vec((0u64..1_000, 0u64..64, 1u64..5_000), 1..8),
        cuts in proptest::collection::vec(1usize..17, 1..6),
    ) {
        let encoded: Vec<Vec<u8>> = flows
            .iter()
            .map(|&(f, p, d)| cops::encode_request(&request(f, p, d)).to_vec())
            .collect();
        let wire: Vec<u8> = encoded.iter().flatten().copied().collect();
        let frames = feed_chunked(&wire, &cuts).expect("valid frames frame cleanly");
        prop_assert_eq!(frames, encoded);
    }

    /// Arbitrary garbage — including bytes that happen to look like
    /// plausible length fields — never panics the reader, and every
    /// frame it does emit still survives the COPS decoder without
    /// panicking (the original corruption property, now behind the
    /// stream layer).
    #[test]
    fn garbage_streams_never_panic(
        junk in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..256),
        cuts in proptest::collection::vec(1usize..9, 1..4),
    ) {
        match feed_chunked(&junk, &cuts) {
            Ok(frames) => {
                for frame in frames {
                    let mut buf = bytes::Bytes::from(frame);
                    if let Ok(decoded) = cops::decode_frame(&mut buf) {
                        let _ = cops::decode_request(&decoded);
                        let _ = cops::decode_decision(&decoded);
                        let _ = cops::decode_delete(&decoded);
                        let _ = cops::decode_buffer_empty(&decoded);
                    }
                }
            }
            Err(FrameError::HeaderTooShort { claimed }) => prop_assert!(claimed < 8),
            Err(FrameError::Oversized { claimed }) => prop_assert!(claimed > MAX_FRAME),
        }
    }

    /// Flipping a byte of a valid frame's length field either still
    /// frames (and then hits the content decoder's own checks) or is
    /// rejected cleanly — the stream layer never over- or under-reads
    /// into the next frame silently when the length stays plausible.
    #[test]
    fn length_corruption_is_contained(flip_at in 4usize..8, flip_to in proptest::arbitrary::any::<u8>()) {
        let good = cops::encode_request(&request(7, 1, 2_440)).to_vec();
        let mut corrupted = good.clone();
        corrupted[flip_at] = flip_to;
        // A second pristine frame follows the corrupted one.
        corrupted.extend_from_slice(&good);

        let mut reader = FrameReader::new();
        reader.extend(&corrupted);
        match reader.next_frame() {
            Err(FrameError::HeaderTooShort { claimed }) => prop_assert!(claimed < 8),
            Err(FrameError::Oversized { claimed }) => prop_assert!(claimed > MAX_FRAME),
            Ok(Some(frame)) => {
                // Whatever length was claimed is exactly what came out.
                let claimed = u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
                prop_assert_eq!(frame.len(), claimed);
                let mut buf = frame;
                let _ = cops::decode_frame(&mut buf);
            }
            Ok(None) => {
                // Claimed length runs past everything buffered: nothing
                // is emitted and the bytes stay pending.
                prop_assert_eq!(reader.pending(), corrupted.len());
            }
        }
    }
}
