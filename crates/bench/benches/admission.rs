//! Admission-control micro-benchmarks — the scalability side of the
//! paper's argument.
//!
//! The broker's value proposition is that admission decisions are pure
//! MIB arithmetic: O(1) on rate-based paths, O(M) in the number of
//! *distinct delay values* (not flows!) on mixed paths, versus the
//! hop-by-hop model's per-router message round and per-router state
//! touch. These benches measure:
//!
//! * `rate_based_admit/hops=N` — §3.1 test vs. path length (flat);
//! * `mixed_admit/classes=M` — Figure-4 scan vs. distinct delay count;
//! * `mixed_admit_flows/flows=N` — same link load spread over a *fixed*
//!   number of classes while the flow count grows: cost stays flat,
//!   demonstrating the aggregation claim;
//! * `aggregate_join` — class-based join planning;
//! * `intserv_hop_by_hop/hops=N` — the baseline's per-hop walk;
//! * `broker_request_release` — full request+bookkeeping+release cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bb_core::admission::aggregate::{plan_join, ClassSpec};
use bb_core::admission::{mixed, rate_based};
use bb_core::intserv::IntServ;
use bb_core::mib::{LinkQos, NodeMib, PathId, PathMib};
use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use netsim::topology::{SchedulerSpec, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::reference::HopKind;
use workload::profiles::type0;

/// A path of `rate_hops` CsVC links and `delay_hops` VT-EDF links, on a
/// fat 100 Mb/s core so admission never rejects during measurement.
fn mib_path(rate_hops: usize, delay_hops: usize) -> (NodeMib, PathMib, PathId) {
    let mut nodes = NodeMib::new();
    let mut refs = Vec::new();
    for i in 0..rate_hops + delay_hops {
        let kind = if i < rate_hops {
            HopKind::RateBased
        } else {
            HopKind::DelayBased
        };
        refs.push(nodes.add_link(LinkQos::new(
            Rate::from_mbps(100),
            kind,
            Nanos::from_micros(120),
            Nanos::ZERO,
            Bits::from_bytes(1500),
        )));
    }
    let mut paths = PathMib::new();
    let pid = paths.register(&nodes, refs);
    (nodes, paths, pid)
}

fn bench_rate_based(c: &mut Criterion) {
    let mut g = c.benchmark_group("rate_based_admit");
    for hops in [2usize, 5, 10, 20, 40] {
        let (nodes, paths, pid) = mib_path(hops, 0);
        let p = type0();
        g.bench_with_input(BenchmarkId::new("hops", hops), &hops, |b, _| {
            b.iter(|| {
                // A loose bound keeps long paths feasible; the cost is
                // bound-independent.
                rate_based::admit(
                    black_box(&p),
                    black_box(Nanos::from_secs(20)),
                    paths.path(pid),
                    &nodes,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

/// Seeds `classes` distinct delay values on the EDF links.
fn seed_classes(
    nodes: &mut NodeMib,
    paths: &PathMib,
    pid: PathId,
    classes: usize,
    per_class: usize,
) {
    let links = paths.path(pid).links.clone();
    for k in 0..classes {
        let d = Nanos::from_millis(20 + 5 * k as u64);
        for _ in 0..per_class {
            for l in &links {
                nodes.link_mut(*l).reserve(Rate::from_bps(10_000));
                if nodes.link(*l).kind == HopKind::DelayBased {
                    nodes
                        .link_mut(*l)
                        .add_edf(Rate::from_bps(10_000), d, Bits::from_bytes(1500));
                }
            }
        }
    }
}

fn bench_mixed_vs_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("mixed_admit");
    for classes in [1usize, 4, 16, 64, 256] {
        let (mut nodes, paths, pid) = mib_path(3, 2);
        seed_classes(&mut nodes, &paths, pid, classes, 1);
        let p = type0();
        g.bench_with_input(BenchmarkId::new("classes", classes), &classes, |b, _| {
            b.iter(|| {
                mixed::admit(
                    black_box(&p),
                    black_box(Nanos::from_millis(2_190)),
                    paths.path(pid),
                    &nodes,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_mixed_vs_flows(c: &mut Criterion) {
    // The complexity claim: cost depends on distinct delays, not flows.
    let mut g = c.benchmark_group("mixed_admit_flows");
    for flows in [8usize, 64, 512] {
        let (mut nodes, paths, pid) = mib_path(3, 2);
        seed_classes(&mut nodes, &paths, pid, 8, flows / 8);
        let p = type0();
        g.bench_with_input(BenchmarkId::new("flows", flows), &flows, |b, _| {
            b.iter(|| {
                mixed::admit(
                    black_box(&p),
                    black_box(Nanos::from_millis(2_190)),
                    paths.path(pid),
                    &nodes,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_aggregate_join(c: &mut Criterion) {
    let (nodes, paths, pid) = mib_path(3, 2);
    let p = type0();
    let cls = ClassSpec {
        id: 0,
        d_req: Nanos::from_millis(2_440),
        cd: Nanos::from_millis(240),
    };
    let agg = p.aggregate(&p).aggregate(&p);
    c.bench_function("aggregate_join", |b| {
        b.iter(|| {
            plan_join(
                black_box(&cls),
                paths.path(pid),
                &nodes,
                Some((&agg, Rate::from_bps(150_000))),
                black_box(&p),
            )
            .unwrap()
        })
    });
}

fn bench_intserv(c: &mut Criterion) {
    let mut g = c.benchmark_group("intserv_hop_by_hop");
    for hops in [2usize, 5, 10, 20, 40] {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<_> = (0..=hops).map(|i| b.node(format!("n{i}"))).collect();
        for i in 0..hops {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_mbps(100),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            );
        }
        let topo = b.build();
        let route: Vec<usize> = (0..hops).collect();
        let p = type0();
        g.bench_with_input(BenchmarkId::new("hops", hops), &hops, |bch, _| {
            let mut is = IntServ::new(&topo);
            let mut id = 0u64;
            bch.iter(|| {
                let flow = FlowId(id);
                id += 1;
                let r = is
                    .request(
                        Time::ZERO,
                        flow,
                        black_box(&p),
                        Nanos::from_secs(20),
                        &route,
                    )
                    .unwrap();
                is.release(flow).unwrap();
                r
            })
        });
    }
    g.finish();
}

fn bench_broker_cycle(c: &mut Criterion) {
    let mut b = TopologyBuilder::new();
    let n: Vec<_> = (0..6).map(|i| b.node(format!("n{i}"))).collect();
    for i in 0..5 {
        b.link(
            n[i],
            n[i + 1],
            Rate::from_mbps(100),
            Nanos::ZERO,
            if i >= 3 {
                SchedulerSpec::VtEdf
            } else {
                SchedulerSpec::CsVc
            },
            Bits::from_bytes(1500),
        );
    }
    let topo = b.build();
    let mut broker = Broker::new(topo, BrokerConfig::default());
    let route: Vec<_> = (0..5).map(netsim::topology::LinkId).collect();
    let pid = broker.register_route(&route);
    let p = type0();
    let mut id = 0u64;
    c.bench_function("broker_request_release", |bch| {
        bch.iter(|| {
            let flow = FlowId(id);
            id += 1;
            let res = broker
                .request(
                    Time::ZERO,
                    &FlowRequest {
                        flow,
                        profile: p,
                        d_req: Nanos::from_millis(2_440),
                        service: ServiceKind::PerFlow,
                        path: pid,
                    },
                )
                .unwrap();
            broker.release(Time::ZERO, flow).unwrap();
            res
        })
    });
}

criterion_group!(
    benches,
    bench_rate_based,
    bench_mixed_vs_classes,
    bench_mixed_vs_flows,
    bench_aggregate_join,
    bench_intserv,
    bench_broker_cycle
);
criterion_main!(benches);
