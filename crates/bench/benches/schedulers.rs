//! Data-plane micro-benchmarks: per-packet scheduling cost.
//!
//! The core-stateless schedulers' per-packet work is a heap operation on
//! state read from the packet header; the stateful baselines add a flow
//! table lookup and clock update. These benches quantify both, plus the
//! edge conditioner's shaping cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qos_units::{Bits, Nanos, Rate, Time};
use sched::{CsVc, Scheduler, VirtualClock, VtEdf};
use vtrs::conditioner::EdgeConditioner;
use vtrs::packet::{FlowId, Packet, PacketState};

fn stamped(flow: u64, seq: u64, vt_ns: u64) -> Packet {
    let mut p = Packet::new(FlowId(flow), seq, Bits::from_bytes(1500), Time::ZERO);
    p.state = Some(PacketState {
        rate: Rate::from_bps(50_000),
        delay: Nanos::from_millis(240),
        virtual_time: Time::from_nanos(vt_ns),
        delta: Nanos::ZERO,
    });
    p
}

/// Enqueue + drain `n` packets round-robin over 16 flows.
fn drive<S: Scheduler>(mut s: S, n: u64) -> u64 {
    for k in 0..n {
        s.enqueue(Time::from_nanos(k), stamped(k % 16, k, k * 1_000));
    }
    let mut served = 0;
    while let Some(t) = s.next_event() {
        if s.dequeue(t).is_some() {
            served += 1;
        }
    }
    served
}

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_throughput");
    let n = 1_000u64;
    g.bench_with_input(BenchmarkId::new("csvc", n), &n, |b, &n| {
        b.iter(|| {
            drive(
                CsVc::new(Rate::from_mbps(100), Bits::from_bytes(1500)),
                black_box(n),
            )
        })
    });
    g.bench_with_input(BenchmarkId::new("vtedf", n), &n, |b, &n| {
        b.iter(|| {
            drive(
                VtEdf::new(Rate::from_mbps(100), Bits::from_bytes(1500)),
                black_box(n),
            )
        })
    });
    g.bench_with_input(BenchmarkId::new("vc_stateful", n), &n, |b, &n| {
        b.iter(|| {
            let mut s = VirtualClock::new(Rate::from_mbps(100), Bits::from_bytes(1500));
            for f in 0..16 {
                s.install_flow(FlowId(f), Rate::from_bps(50_000)).unwrap();
            }
            drive(s, black_box(n))
        })
    });
    g.finish();
}

fn bench_conditioner(c: &mut Criterion) {
    c.bench_function("edge_conditioner_shape_1000", |b| {
        b.iter(|| {
            let mut cond = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::ZERO, 5);
            for k in 0..1_000u64 {
                cond.arrive(
                    Time::ZERO,
                    Packet::new(FlowId(1), k, Bits::from_bytes(1500), Time::ZERO),
                );
            }
            let mut out = 0u64;
            while let Some(due) = cond.next_release_time() {
                if cond.release(due).is_some() {
                    out += 1;
                }
            }
            black_box(out)
        })
    });
}

criterion_group!(benches, bench_schedulers, bench_conditioner);
criterion_main!(benches);
