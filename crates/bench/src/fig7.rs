//! Figure 7 — the dynamic-aggregation transient, demonstrated in the
//! packet plane.
//!
//! A macroflow of two greedy type-0 microflows is shaped at its mean
//! rate; at `t* = T_on^α − T_on^ν` a third, burst-lighter microflow
//! joins and the shaping rate is raised to the new macroflow's reserved
//! rate `r^{α'}`. Two treatments:
//!
//! * **naive** — only the rate changes. The backlog accumulated by the
//!   old macroflow makes packets arriving after `t*` exceed the new
//!   edge-delay bound `d_edge^{α'}` (eq. 3 evaluated for the new
//!   profile), exactly the hazard §4.1 describes;
//! * **contingency** — additionally `Δr = Pν − (r^{α'} − r^α)`
//!   contingency bandwidth is granted until the edge buffer drains
//!   (Theorem 2). The delay of post-`t*` packets stays within
//!   `max(d_edge^{old}, d_edge^{α'})` (eq. 13).
//!
//! The experiment runs the real VTRS data plane (edge conditioner +
//! 5 C̄SVC hops) with invariant validation enabled.

use netsim::{Simulator, SourceModel};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::delay::edge_delay_bound;
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

use crate::figure8::{build, Setting};

/// Outcome of the transient experiment.
#[derive(Debug, Clone, Copy)]
pub struct TransientResult {
    /// `d_edge` bound of the old macroflow at the old rate.
    pub d_edge_old: Nanos,
    /// `d_edge` bound of the new macroflow at the new rate — what a
    /// bookkeeping-only broker would assume after the join.
    pub d_edge_new: Nanos,
    /// Join instant `t*`.
    pub t_star: Time,
    /// Observed max edge delay of packets created after `t*`, naive
    /// treatment.
    pub naive_observed: Nanos,
    /// Observed max edge delay of packets created after `t*`, with
    /// contingency bandwidth.
    pub contingency_observed: Nanos,
    /// VTRS invariant violations across both runs (must be zero).
    pub invariant_violations: u64,
}

fn type0() -> TrafficProfile {
    workload::profiles::type0()
}

/// The joining microflow: smaller burst (`T_on^ν = 0.15 s`), same peak.
fn nu_profile() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(24_000),
        Rate::from_bps(20_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

/// Macroflow reserved rates: old = ρ^α of two type-0 flows; the new rate
/// may be anywhere in `[r^α + ρ^ν, r^α + P^ν]` — the closer to the
/// joining flow's peak, the tighter the new edge bound and the starker
/// the naive violation (we use +80 kb/s; the fluid excess over the new
/// bound is `0.45 − 54000/r^{α'} ≈ 0.15 s` there).
fn rates() -> (Rate, Rate) {
    (Rate::from_bps(100_000), Rate::from_bps(180_000))
}

/// Runs one treatment; returns (max edge delay post-t*, violations).
fn run_one(with_contingency: bool) -> (Nanos, u64, Time) {
    let f8 = build(Setting::RateOnly);
    let alpha = type0();
    let nu = nu_profile();
    let (r_old, r_new) = rates();
    let t_star = Time::ZERO + alpha.t_on() - nu.t_on();

    let mut sim = Simulator::new(f8.topo);
    sim.enable_validation();
    let macro_id = FlowId(1);
    sim.add_flow(macro_id, r_old, Nanos::ZERO, f8.path1);
    sim.set_flow_threshold(macro_id, t_star);
    // Two greedy type-0 microflows from t = 0.
    for _ in 0..2 {
        sim.add_source(
            macro_id,
            SourceModel::Greedy {
                profile: alpha,
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            Some(Time::from_secs_f64(12.0)),
            None,
        );
    }
    // The joining microflow, greedy from t*.
    sim.add_source(
        macro_id,
        SourceModel::Greedy {
            profile: nu,
            packet: Bits::from_bytes(1500),
        },
        t_star,
        Some(Time::from_secs_f64(12.0)),
        None,
    );

    // Run to the join instant, then re-rate (BB → edge signaling).
    sim.run_until(t_star);
    sim.set_flow_rate(macro_id, r_new);
    if with_contingency {
        // Δr = Pν − (r' − r) per Theorem 2, held until the edge buffer
        // drains (the feedback scheme), polled at 10 ms.
        let delta = nu.peak - (r_new - r_old);
        sim.set_flow_contingency(macro_id, delta);
        let mut t = t_star;
        loop {
            t += Nanos::from_millis(10);
            sim.run_until(t);
            if sim.flow_backlog(macro_id) == Bits::ZERO {
                sim.set_flow_contingency(macro_id, Rate::ZERO);
                break;
            }
        }
    }
    sim.run_to_completion();
    let st = sim.flow_stats(macro_id);
    (
        st.max_edge_post,
        st.spacing_violations + st.reality_violations,
        t_star,
    )
}

/// Runs both treatments and assembles the comparison.
#[must_use]
pub fn run() -> TransientResult {
    let alpha2 = type0().aggregate(&type0());
    let alpha3 = alpha2.aggregate(&nu_profile());
    let (r_old, r_new) = rates();
    let d_edge_old = edge_delay_bound(&alpha2, r_old).expect("valid rate");
    let d_edge_new = edge_delay_bound(&alpha3, r_new).expect("valid rate");
    let (naive_observed, naive_violations, t_star) = run_one(false);
    let (contingency_observed, contingency_violations, _) = run_one(true);
    TransientResult {
        d_edge_old,
        d_edge_new,
        t_star,
        naive_observed,
        contingency_observed,
        invariant_violations: naive_violations + contingency_violations,
    }
}

/// Renders the comparison.
#[must_use]
pub fn render(r: &TransientResult) -> String {
    format!(
        "Figure 7 transient (microflow joins at t* = {}):\n\
           d_edge bound, old macroflow @ old rate : {}\n\
           d_edge bound, new macroflow @ new rate : {}\n\
           observed max edge delay after t*, naive rate change : {}  {}\n\
           observed max edge delay after t*, with contingency  : {}  {}\n\
           VTRS invariant violations: {}\n",
        r.t_star,
        r.d_edge_old,
        r.d_edge_new,
        r.naive_observed,
        if r.naive_observed > r.d_edge_new {
            "(VIOLATES the new bound)"
        } else {
            "(within the new bound)"
        },
        r.contingency_observed,
        if r.contingency_observed <= r.d_edge_old.max(r.d_edge_new) {
            "(within max(old, new) as Theorem 2 guarantees)"
        } else {
            "(UNEXPECTED violation)"
        },
        r.invariant_violations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_violates_and_contingency_repairs() {
        let r = run();
        // The naive rate change lets old backlog push post-join packets
        // past the new bound…
        assert!(
            r.naive_observed > r.d_edge_new,
            "expected a violation: observed {} vs bound {}",
            r.naive_observed,
            r.d_edge_new
        );
        // …while the contingency grant keeps them within Theorem 2's
        // envelope…
        assert!(
            r.contingency_observed <= r.d_edge_old.max(r.d_edge_new),
            "contingency failed: {} > max({}, {})",
            r.contingency_observed,
            r.d_edge_old,
            r.d_edge_new
        );
        // …and does not do worse than the naive treatment (the extra
        // Δr only speeds the drain).
        assert!(r.contingency_observed <= r.naive_observed);
        // The data plane never broke a VTRS invariant in either run.
        assert_eq!(r.invariant_violations, 0);
        // And the rendering labels the outcome correctly.
        let text = render(&r);
        assert!(text.contains("VIOLATES the new bound"));
        assert!(text.contains("within max(old, new)"));
    }
}
