//! Figure 9 — mean reserved bandwidth per flow vs. flows admitted.
//!
//! Mixed scheduler setting, delay bound 2.19 s, type-0 flows admitted
//! sequentially on S1 → D1. After each admission the plot records the
//! bandwidth currently allocated on the path divided by the number of
//! admitted flows:
//!
//! * **IntServ/GS** — every flow reserves the same WFQ-reference rate, a
//!   flat line slightly above the per-flow BB curve;
//! * **Per-flow BB/VTRS** — early flows get the mean rate (the
//!   path-oriented algorithm trades delay budget for rate); later flows
//!   need more as the VT-EDF horizons fill, so the average climbs but
//!   stays below IntServ/GS;
//! * **Aggr BB/VTRS** — measured right after each join, while the
//!   peak-rate contingency is still allocated: the average starts at the
//!   peak rate and falls toward (just above) the mean rate as the
//!   aggregate grows — eventually well below both per-flow schemes.

use bb_core::admission::aggregate::ClassSpec;
use bb_core::contingency::ContingencyPolicy;
use bb_core::intserv::IntServ;
use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use qos_units::{Nanos, Rate, Time};
use vtrs::packet::FlowId;
use workload::profiles::type0;

use crate::figure8::{build, Setting};

/// One scheme's series: `points[n-1]` is the mean reserved bandwidth per
/// flow (bps) after admitting `n` flows.
#[derive(Debug, Clone)]
pub struct Series {
    /// Scheme label.
    pub label: &'static str,
    /// Mean reserved bandwidth per flow after each admission.
    pub points: Vec<f64>,
}

/// The class delay parameter used for the aggregate curve (the paper
/// plots cd = 0.10 in Figure 9's discussion).
#[must_use]
pub fn aggr_cd() -> Nanos {
    Nanos::from_millis(100)
}

/// Runs the experiment at the given delay bound (the paper uses 2.19 s).
#[must_use]
pub fn run(d_req: Nanos) -> Vec<Series> {
    vec![
        intserv_series(d_req),
        perflow_series(d_req),
        aggregate_series(d_req),
    ]
}

fn intserv_series(d_req: Nanos) -> Series {
    let f8 = build(Setting::Mixed);
    let mut is = IntServ::new(&f8.topo);
    let route: Vec<usize> = f8.path1.iter().map(|l| l.0).collect();
    let profile = type0();
    let mut total = 0u64;
    let mut points = Vec::new();
    let mut n = 0u64;
    while let Ok(rate) = is.request(Time::ZERO, FlowId(n), &profile, d_req, &route) {
        n += 1;
        total += rate.as_bps();
        points.push(total as f64 / n as f64);
    }
    Series {
        label: "IntServ/GS",
        points,
    }
}

fn perflow_series(d_req: Nanos) -> Series {
    let f8 = build(Setting::Mixed);
    let mut broker = Broker::new(f8.topo, BrokerConfig::default());
    let pid = broker.register_route(&f8.path1);
    let profile = type0();
    let mut total = 0u64;
    let mut points = Vec::new();
    let mut n = 0u64;
    loop {
        let res = broker.request(
            Time::ZERO,
            &FlowRequest {
                flow: FlowId(n),
                profile,
                d_req,
                service: ServiceKind::PerFlow,
                path: pid,
            },
        );
        let Ok(r) = res else { break };
        n += 1;
        total += r.rate.as_bps();
        points.push(total as f64 / n as f64);
    }
    Series {
        label: "Per-flow BB/VTRS",
        points,
    }
}

fn aggregate_series(d_req: Nanos) -> Series {
    let f8 = build(Setting::Mixed);
    let mut broker = Broker::new(
        f8.topo,
        BrokerConfig {
            contingency: ContingencyPolicy::Bounding,
            classes: vec![ClassSpec {
                id: 0,
                d_req,
                cd: aggr_cd(),
            }],
            ..BrokerConfig::default()
        },
    );
    let pid = broker.register_route(&f8.path1);
    let profile = type0();
    let mut points = Vec::new();
    let mut now = Time::ZERO;
    let mut n = 0u64;
    loop {
        let res = broker.request(
            now,
            &FlowRequest {
                flow: FlowId(n),
                profile,
                d_req,
                service: ServiceKind::Class(0),
                path: pid,
            },
        );
        let Ok(r) = res else { break };
        n += 1;
        // Sample while the join's contingency is still allocated — the
        // bandwidth the network is actually committing at this instant.
        let allocated: Rate = r.rate.saturating_add(r.contingency);
        points.push(allocated.as_bps() as f64 / n as f64);
        if let Some(exp) = r.contingency_expires {
            now = exp + Nanos::from_nanos(1);
            broker.tick(now);
        }
    }
    Series {
        label: "Aggr BB/VTRS",
        points,
    }
}

/// Renders the three series as aligned CSV (flows, then one column per
/// scheme; empty cells once a scheme saturates).
#[must_use]
pub fn render(series: &[Series]) -> String {
    let mut out = String::from("flows");
    for s in series {
        out.push(',');
        out.push_str(s.label);
    }
    out.push('\n');
    let max_n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..max_n {
        out.push_str(&format!("{}", i + 1));
        for s in series {
            match s.points.get(i) {
                Some(v) => out.push_str(&format!(",{v:.1}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure9_shape() {
        let series = run(Nanos::from_millis(2_190));
        let (is, pf, ag) = (&series[0], &series[1], &series[2]);
        // Admission counts are Table 2's mixed/2.19 column.
        assert_eq!(is.points.len(), 27);
        assert_eq!(pf.points.len(), 27);
        assert_eq!(ag.points.len(), 29);
        // IntServ: flat at the GS rate.
        assert!(is.points.iter().all(|p| (*p - 54_020.0).abs() < 1.0));
        // Per-flow BB: starts at the mean rate, ends higher, never above
        // IntServ.
        assert!((pf.points[0] - 50_000.0).abs() < 1.0);
        assert!(*pf.points.last().unwrap() > pf.points[0]);
        for (a, b) in pf.points.iter().zip(&is.points) {
            assert!(a <= b, "per-flow average {a} above IntServ {b}");
        }
        // Aggregate: the first join creates the macroflow with no
        // contingency (its edge buffer is empty); from the second join on
        // the peak-rate contingency dominates and the average decreases
        // monotonically toward the mean rate.
        assert!((ag.points[0] - 50_000.0).abs() < 1.0);
        assert!(
            ag.points[1] > 70_000.0,
            "second join should carry peak-rate contingency"
        );
        for w in ag.points[1..].windows(2) {
            assert!(w[1] <= w[0] + 1.0, "aggregate average increased");
        }
        let ag_last = *ag.points.last().unwrap();
        assert!(ag_last < pf.points[26], "no crossover vs per-flow");
        assert!(ag_last < is.points[26], "no crossover vs IntServ");
        // And the asymptote is just above the mean rate.
        assert!((50_000.0..53_000.0).contains(&ag_last));
    }

    #[test]
    fn render_is_csv_with_header() {
        let series = run(Nanos::from_millis(2_190));
        let s = render(&series);
        let mut lines = s.lines();
        assert_eq!(
            lines.next().unwrap(),
            "flows,IntServ/GS,Per-flow BB/VTRS,Aggr BB/VTRS"
        );
        assert!(lines.next().unwrap().starts_with("1,"));
    }
}
