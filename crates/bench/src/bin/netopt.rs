//! Extension experiment (beyond the paper's figures): network-wide
//! optimization through alternate-path admission.
//!
//! §1 argues that concentrating all QoS state at the broker enables
//! "sophisticated QoS provisioning … to optimize network utilization in
//! a network-wide fashion … difficult, if not impossible, under the
//! conventional hop-by-hop reservation set-up approach". This binary
//! quantifies that: on a diamond domain (a 1-hop shortcut plus two 2-hop
//! branches), fixed shortest-path admission strands the branch capacity,
//! while the broker's residual-aware alternate placement uses it.

use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use netsim::topology::{SchedulerSpec, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use workload::profiles::type0;

fn main() {
    let mut b = TopologyBuilder::new();
    let i = b.node("I");
    let a = b.node("A");
    let c = b.node("B");
    let e = b.node("E");
    let cap = Rate::from_bps(1_500_000);
    let lmax = Bits::from_bytes(1500);
    b.link(i, e, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    b.link(i, a, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    b.link(a, e, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    b.link(i, c, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    b.link(c, e, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    let topo = b.build();

    let profile = type0();
    let request = |flow: u64| FlowRequest {
        flow: FlowId(flow),
        profile,
        d_req: Nanos::from_secs(5),
        service: ServiceKind::PerFlow,
        path: bb_core::mib::PathId(0),
    };

    // Fixed shortest path only.
    let mut fixed = Broker::new(topo.clone(), BrokerConfig::default());
    let pid = fixed.path_between(i, e).expect("reachable");
    let mut n_fixed = 0u64;
    loop {
        let mut req = request(n_fixed);
        req.path = pid;
        if fixed.request(Time::ZERO, &req).is_err() {
            break;
        }
        n_fixed += 1;
    }

    // Broker-steered alternates.
    let mut alt = Broker::new(topo, BrokerConfig::default());
    let mut n_alt = 0u64;
    let mut per_path = std::collections::HashMap::new();
    while let Ok((_, chosen)) =
        alt.request_with_alternates(Time::ZERO, &request(1_000 + n_alt), i, e, 4)
    {
        n_alt += 1;
        *per_path.entry(chosen).or_insert(0u64) += 1;
    }

    println!("network-wide optimization on the diamond domain (type-0 flows, D = 5 s):");
    println!("  fixed shortest-path admission : {n_fixed} flows");
    println!(
        "  broker alternate-path admission: {n_alt} flows across {} paths {:?}",
        per_path.len(),
        {
            let mut v: Vec<u64> = per_path.values().copied().collect();
            v.sort_unstable();
            v
        }
    );
    println!(
        "  gain: {:.0}% — capacity a hop-by-hop control plane leaves stranded",
        (n_alt as f64 / n_fixed as f64 - 1.0) * 100.0
    );
}
