//! Regenerates Table 2: maximum calls admitted per scheme × setting ×
//! delay bound.

fn main() {
    let t = bb_bench::table2::run();
    print!("{}", bb_bench::table2::render(&t));
}
