//! Extension experiment: broker scalability with domain size — the §1
//! concern ("its ability to manage a large number of QoS control states
//! and process a large volume of user flow QoS requests").
//!
//! Grows a grid-ish domain (parallel pods of 5-hop paths), fills every
//! pod with per-flow reservations, and reports the broker's decision
//! throughput and state footprint against the hop-by-hop alternative's
//! per-router state. Alongside the table, writes the rows to
//! `BENCH_domain_scale.json` for machine consumption — each row now
//! carries a throughput **time series** (sampled as the fill
//! progresses) and the decision-latency histogram, not only the final
//! aggregate.

use std::time::Instant;

use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bb_telemetry::{HistogramSnapshot, LogHistogram};
use netsim::topology::{SchedulerSpec, Topology};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use workload::profiles::type0;

const HOPS: usize = 5;
/// Decisions between throughput-timeline samples.
const SAMPLE_EVERY: u64 = 512;

#[derive(serde::Serialize)]
struct TimelinePoint {
    t_s: f64,
    decisions: u64,
    admitted: u64,
}

#[derive(serde::Serialize)]
struct Row {
    pods: usize,
    links: usize,
    admitted: u64,
    decisions_per_s: f64,
    decision_p50_us: Option<f64>,
    decision_p99_us: Option<f64>,
    bb_flow_records: usize,
    hop_by_hop_entries: u64,
    timeline: Vec<TimelinePoint>,
    decision_ns: HistogramSnapshot,
}

#[derive(serde::Serialize)]
struct Report {
    hops: usize,
    profile: &'static str,
    d_req_ms: u64,
    rows: Vec<Row>,
}

fn main() {
    println!("broker scalability vs domain size (type-0 flows, D = 2.44 s):");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>14} {:>18}",
        "pods", "links", "flows", "decisions/s", "BB flow recs", "hop-by-hop state"
    );
    let mut rows = Vec::new();
    for pods in [1usize, 4, 16, 64, 256] {
        let (topo, routes) = Topology::pod_chains(
            pods,
            HOPS,
            Rate::from_bps(1_500_000),
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        let links = topo.link_count();
        let mut broker = Broker::new(topo, BrokerConfig::default());
        let pids: Vec<_> = routes.iter().map(|r| broker.register_route(r)).collect();

        let hist = LogHistogram::new();
        let mut timeline = Vec::new();
        let t0 = Instant::now();
        let mut decisions = 0u64;
        let mut admitted = 0u64;
        let mut id = 0u64;
        for pid in &pids {
            loop {
                let req = FlowRequest {
                    flow: FlowId(id),
                    profile: type0(),
                    d_req: Nanos::from_millis(2_440),
                    service: ServiceKind::PerFlow,
                    path: *pid,
                };
                id += 1;
                decisions += 1;
                let d0 = Instant::now();
                let result = broker.request(Time::ZERO, &req);
                hist.record(u64::try_from(d0.elapsed().as_nanos()).unwrap_or(u64::MAX));
                if decisions.is_multiple_of(SAMPLE_EVERY) {
                    timeline.push(TimelinePoint {
                        t_s: t0.elapsed().as_secs_f64(),
                        decisions,
                        admitted,
                    });
                }
                match result {
                    Ok(_) => admitted += 1,
                    Err(_) => break,
                }
            }
        }
        timeline.push(TimelinePoint {
            t_s: t0.elapsed().as_secs_f64(),
            decisions,
            admitted,
        });
        let dps = decisions as f64 / t0.elapsed().as_secs_f64();
        // Hop-by-hop would install one entry per flow per hop.
        let hop_state = admitted * HOPS as u64;
        println!(
            "{:>6} {:>8} {:>8} {:>12.0} {:>14} {:>18}",
            pods,
            links,
            admitted,
            dps,
            broker.flows().len(),
            hop_state
        );
        let snap = hist.snapshot();
        rows.push(Row {
            pods,
            links,
            admitted,
            decisions_per_s: dps,
            decision_p50_us: snap.quantile_ns(0.50).map(|ns| ns as f64 / 1e3),
            decision_p99_us: snap.quantile_ns(0.99).map(|ns| ns as f64 / 1e3),
            bb_flow_records: broker.flows().len(),
            hop_by_hop_entries: hop_state,
            timeline,
            decision_ns: snap,
        });
    }
    let report = Report {
        hops: HOPS,
        profile: "type0",
        d_req_ms: 2_440,
        rows,
    };
    std::fs::write(
        "BENCH_domain_scale.json",
        serde::json::to_string_pretty(&report),
    )
    .expect("write BENCH_domain_scale.json");
    println!(
        "\ndecision throughput is flat in domain size (each decision touches one\n\
         path's MIB rows), and the broker's footprint is one record per flow —\n\
         versus flows × hops entries scattered across routers hop-by-hop.\n\
         wrote BENCH_domain_scale.json"
    );
}
