//! Extension experiment: broker scalability with domain size — the §1
//! concern ("its ability to manage a large number of QoS control states
//! and process a large volume of user flow QoS requests").
//!
//! Grows a grid-ish domain (parallel pods of 5-hop paths), fills every
//! pod with per-flow reservations, and reports the broker's decision
//! throughput and state footprint against the hop-by-hop alternative's
//! per-router state.

use std::time::Instant;

use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use netsim::topology::{LinkId, SchedulerSpec, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use workload::profiles::type0;

/// `pods` disjoint 5-hop chains in one domain.
fn build(pods: usize) -> (netsim::topology::Topology, Vec<Vec<LinkId>>) {
    let mut b = TopologyBuilder::new();
    let mut routes = Vec::new();
    for p in 0..pods {
        let nodes: Vec<_> = (0..6).map(|i| b.node(format!("p{p}n{i}"))).collect();
        routes.push(
            (0..5)
                .map(|i| {
                    b.link(
                        nodes[i],
                        nodes[i + 1],
                        Rate::from_bps(1_500_000),
                        Nanos::ZERO,
                        SchedulerSpec::CsVc,
                        Bits::from_bytes(1500),
                    )
                })
                .collect(),
        );
    }
    (b.build(), routes)
}

fn main() {
    println!("broker scalability vs domain size (type-0 flows, D = 2.44 s):");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>14} {:>18}",
        "pods", "links", "flows", "decisions/s", "BB flow recs", "hop-by-hop state"
    );
    for pods in [1usize, 4, 16, 64, 256] {
        let (topo, routes) = build(pods);
        let links = topo.link_count();
        let mut broker = Broker::new(topo, BrokerConfig::default());
        let pids: Vec<_> = routes.iter().map(|r| broker.register_route(r)).collect();

        let t0 = Instant::now();
        let mut decisions = 0u64;
        let mut admitted = 0u64;
        let mut id = 0u64;
        for pid in &pids {
            loop {
                let req = FlowRequest {
                    flow: FlowId(id),
                    profile: type0(),
                    d_req: Nanos::from_millis(2_440),
                    service: ServiceKind::PerFlow,
                    path: *pid,
                };
                id += 1;
                decisions += 1;
                match broker.request(Time::ZERO, &req) {
                    Ok(_) => admitted += 1,
                    Err(_) => break,
                }
            }
        }
        let dps = decisions as f64 / t0.elapsed().as_secs_f64();
        // Hop-by-hop would install one entry per flow per hop.
        let hop_state = admitted * 5;
        println!(
            "{:>6} {:>8} {:>8} {:>12.0} {:>14} {:>18}",
            pods,
            links,
            admitted,
            dps,
            broker.flows().len(),
            hop_state
        );
    }
    println!(
        "\ndecision throughput is flat in domain size (each decision touches one\n\
         path's MIB rows), and the broker's footprint is one record per flow —\n\
         versus flows × hops entries scattered across routers hop-by-hop."
    );
}
