//! Regenerates Figure 10: flow blocking rate vs. offered load for the
//! per-flow, aggregate-bounding and aggregate-feedback schemes (5 seeded
//! runs averaged per point), CSV to stdout.

fn main() {
    let cfg = bb_bench::fig10::Config::default();
    let curves = bb_bench::fig10::run(&cfg);
    print!("{}", bb_bench::fig10::render(&curves));
}
