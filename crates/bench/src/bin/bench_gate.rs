//! `bench-gate` — CI's bench-regression gate.
//!
//! ```text
//! bench_gate --fresh BENCH_loadgen.fresh.json \
//!            --baseline BENCH_loadgen.json \
//!            [--min-ratio 0.6] [--max-p99-ratio 1.5] [--min-hit-rate 0.5]
//!            [--max-allocs-per-decision X]
//!            [--durable] [--min-connections N] [--min-decide-speedup R]
//!            [--federation] [--min-domains 3]
//!            [--failover] [--max-failover-p99-ms 5000]
//!            [--scenario] [--max-bytes-per-flow 4096]
//! ```
//!
//! Reads both `bb-loadgen` reports, applies
//! [`bb_bench::gate::check_full_with_allocs`], prints the verdict, and
//! exits non-zero when the gate fails: the fresh run must be
//! `--verify`-clean, produced with the baseline's exact workload
//! configuration, within the allowed throughput margin (default: no
//! more than 40 % below baseline), within the allowed p99
//! setup-latency ceiling (default: no more than 1.5× baseline), and at
//! or above the absolute path-cache hit-rate floor (default: 50 %).
//!
//! `--max-allocs-per-decision X` additionally caps the fresh run's heap
//! allocations per decision at X (absolute, strict). It requires the
//! fresh report to come from a `bb-loadgen` built with
//! `--features count-allocs`; without the flag the field is ignored.
//!
//! With `--durable` the fresh report must come from a
//! `bb-loadgen --durable` run and is gated with
//! [`bb_bench::gate::check_durable`] instead: same config and
//! verification rules, a successful restart-recovery check, and a
//! throughput floor against the **non-durable** baseline (so the gate
//! bounds the durability tax itself).
//!
//! With `--min-decide-speedup R` the fresh report is a **batched**
//! (lock-free decide) run and the baseline its `--no-batched-decide`
//! twin of the same workload; the gate is
//! [`bb_bench::gate::check_decide_speedup`]: the locked run's mean
//! decide-phase cost per decision must be at least R times the batched
//! run's. Decide CPU, not throughput, because under a paced or
//! backlogged workload wall time is set by the wire and the commit
//! queue — the decide histograms are the signal that survives the
//! noise.
//!
//! With `--min-connections N` the fresh report must come from a
//! `bb-loadgen --connections` swarm run and is gated with
//! [`bb_bench::gate::check_swarm`]: same workload configuration, at
//! least N persistent connections held by the generator **and**
//! observed concurrently open by the daemon, and throughput within the
//! margin of the baseline — high fan-in must not cost decisions/s.
//!
//! With `--federation` the fresh report is a `bb-loadgen --domains`
//! federation run gated with [`bb_bench::gate::check_federation`]
//! against the checked-in `BENCH_federation.json`: at least
//! `--min-domains` chained domains (default 3), `--verify`-clean
//! against the flat union-topology broker, zero residue left in any
//! downstream domain, and throughput/cross-domain-p99 within the
//! margins. Every failed check prints expected vs actual, in one pass.
//!
//! With `--failover` the fresh report is a `bb-loadgen --failover` run
//! gated with [`bb_bench::gate::check_failover`]. The report is
//! self-contained (it measures its own durable baseline), so
//! `--baseline` is not read: zero acknowledged flows lost across the
//! SIGKILL, every offered request answered, the replicated throughput
//! at or above `--min-ratio` (default 0.9) of the durable baseline, and
//! the p99 failover time under `--max-failover-p99-ms` (default 5000).
//!
//! With `--scenario` the fresh report is a `bb-loadgen --scenario`
//! subscriber-tree run (`BENCH_scenario.json`) gated with
//! [`bb_bench::gate::check_scenario`]: same tree/target/seed as the
//! baseline, probe-verified (`verified_sampled` true), the resident
//! ramp at or above `resident_target`, sustained ramp decisions/s at
//! or above `--min-ratio` (default 0.6) of the baseline, the RSS
//! envelope under `--max-bytes-per-flow` per resident flow (absolute
//! ceiling, default 4096, so memory regressions cannot hide behind a
//! noisy baseline), and a non-empty event replay.

use bb_bench::gate::{
    check_decide_speedup, check_durable, check_failover, check_federation, check_full_with_allocs,
    check_scenario, check_swarm, DEFAULT_MAX_BYTES_PER_FLOW, DEFAULT_MAX_FAILOVER_P99_MS,
    DEFAULT_MAX_P99_RATIO, DEFAULT_MIN_HIT_RATE, DEFAULT_MIN_RATIO, DEFAULT_MIN_REPL_RATIO,
    DEFAULT_MIN_SCENARIO_RATIO,
};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn load(path: &str) -> serde::json::Value {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench-gate: cannot read {path}: {e}"));
    serde::json::parse(&raw).unwrap_or_else(|e| panic!("bench-gate: {path} is not JSON: {e:?}"))
}

fn main() {
    let fresh_path = arg("--fresh").expect("bench-gate: --fresh <report.json> is required");
    // The failover gate is self-contained — BENCH_failover.json carries
    // its own durable baseline — so it resolves before --baseline is
    // demanded.
    if flag("--failover") {
        let min_ratio: f64 = arg("--min-ratio")
            .map(|v| v.parse().expect("bench-gate: --min-ratio must be a float"))
            .unwrap_or(DEFAULT_MIN_REPL_RATIO);
        let max_p99_ms: f64 = arg("--max-failover-p99-ms")
            .map(|v| {
                v.parse()
                    .expect("bench-gate: --max-failover-p99-ms must be a float")
            })
            .unwrap_or(DEFAULT_MAX_FAILOVER_P99_MS);
        match check_failover(&load(&fresh_path), min_ratio, max_p99_ms) {
            Ok(verdict) => {
                println!(
                    "bench-gate: replicated {:.0} decisions/s vs durable baseline {:.0} \
                     ({:.0}%, floor {:.0}%)",
                    verdict.replicated_rps,
                    verdict.durable_baseline_rps,
                    verdict.throughput_ratio * 100.0,
                    verdict.min_ratio * 100.0
                );
                println!(
                    "bench-gate: failover p50 {:.1} ms, p99 {:.1} ms (ceiling {:.0} ms); \
                     {:.0} acknowledged flows lost, {:.0} ghost duplicates",
                    verdict.failover_p50_ms,
                    verdict.failover_p99_ms,
                    verdict.max_p99_ms,
                    verdict.lost_admitted_flows.max(0.0),
                    verdict.ghost_duplicates
                );
                if verdict.passed() {
                    println!("bench-gate: PASS (failover)");
                } else {
                    for f in &verdict.failures {
                        eprintln!("bench-gate: FAIL: {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("bench-gate: unusable report: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let baseline_path =
        arg("--baseline").expect("bench-gate: --baseline <report.json> is required");
    let min_ratio: f64 = arg("--min-ratio")
        .map(|v| v.parse().expect("bench-gate: --min-ratio must be a float"))
        .unwrap_or(DEFAULT_MIN_RATIO);
    let max_p99_ratio: f64 = arg("--max-p99-ratio")
        .map(|v| {
            v.parse()
                .expect("bench-gate: --max-p99-ratio must be a float")
        })
        .unwrap_or(DEFAULT_MAX_P99_RATIO);
    let min_hit_rate: f64 = arg("--min-hit-rate")
        .map(|v| {
            v.parse()
                .expect("bench-gate: --min-hit-rate must be a float")
        })
        .unwrap_or(DEFAULT_MIN_HIT_RATE);
    let max_allocs: Option<f64> = arg("--max-allocs-per-decision").map(|v| {
        v.parse()
            .expect("bench-gate: --max-allocs-per-decision must be a float")
    });

    let fresh = load(&fresh_path);
    let baseline = load(&baseline_path);
    if flag("--scenario") {
        // Scenario runs are paced end-to-end sweeps, noisier than the
        // steady-state loadgen bench — the throughput floor defaults
        // looser than the plain gate's.
        let min_ratio: f64 = arg("--min-ratio")
            .map(|v| v.parse().expect("bench-gate: --min-ratio must be a float"))
            .unwrap_or(DEFAULT_MIN_SCENARIO_RATIO);
        let max_bytes_per_flow: f64 = arg("--max-bytes-per-flow")
            .map(|v| {
                v.parse()
                    .expect("bench-gate: --max-bytes-per-flow must be a float")
            })
            .unwrap_or(DEFAULT_MAX_BYTES_PER_FLOW);
        match check_scenario(&fresh, &baseline, min_ratio, max_bytes_per_flow) {
            Ok(verdict) => {
                println!(
                    "bench-gate: scenario ramp held {:.0} resident flows (target {:.0})",
                    verdict.resident_peak, verdict.resident_target
                );
                println!(
                    "bench-gate: sustained {:.0} decisions/s vs baseline {:.0} \
                     ({:.0}%, floor {:.0}%)",
                    verdict.fresh_sustained_rps,
                    verdict.baseline_sustained_rps,
                    verdict.ratio * 100.0,
                    verdict.min_ratio * 100.0
                );
                println!(
                    "bench-gate: {:.0} bytes/resident-flow (ceiling {:.0}); \
                     {:.0} replay events",
                    verdict.bytes_per_resident_flow,
                    verdict.max_bytes_per_flow,
                    verdict.replay_events
                );
                if verdict.passed() {
                    println!("bench-gate: PASS (scenario)");
                } else {
                    for f in &verdict.failures {
                        eprintln!("bench-gate: FAIL: {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("bench-gate: unusable report: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if flag("--federation") {
        let min_domains: f64 = arg("--min-domains")
            .map(|v| {
                v.parse()
                    .expect("bench-gate: --min-domains must be a number")
            })
            .unwrap_or(3.0);
        match check_federation(&fresh, &baseline, min_ratio, max_p99_ratio, min_domains) {
            Ok(verdict) => {
                println!(
                    "bench-gate: federation {:.0} decisions/s over {:.0} domains vs baseline \
                     {:.0} ({:.0}%, floor {:.0}%)",
                    verdict.fresh_throughput,
                    verdict.domains,
                    verdict.baseline_throughput,
                    verdict.ratio * 100.0,
                    verdict.min_ratio * 100.0
                );
                println!(
                    "bench-gate: cross-domain p99 {:.0}µs vs baseline {:.0}µs ({:.0}%, ceiling \
                     {:.0}%); downstream residency {}",
                    verdict.fresh_p99_us,
                    verdict.baseline_p99_us,
                    verdict.p99_ratio * 100.0,
                    verdict.max_p99_ratio * 100.0,
                    match verdict.residency_ok {
                        Some(true) => "clean",
                        Some(false) => "LEAKED",
                        None => "unchecked (externally hosted chain)",
                    }
                );
                if verdict.passed() {
                    println!("bench-gate: PASS (federation)");
                } else {
                    for f in &verdict.failures {
                        eprintln!("bench-gate: FAIL: {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("bench-gate: unusable report: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if let Some(mins) = arg("--min-decide-speedup") {
        let min_speedup: f64 = mins
            .parse()
            .expect("bench-gate: --min-decide-speedup must be a float");
        match check_decide_speedup(&fresh, &baseline, min_speedup) {
            Ok(verdict) => {
                println!(
                    "bench-gate: batched decide {:.0} ns/decision vs locked {:.0} ns \
                     ({:.2}x, floor {:.2}x)",
                    verdict.fresh_decide_ns,
                    verdict.baseline_decide_ns,
                    verdict.speedup,
                    verdict.min_speedup
                );
                if verdict.passed() {
                    println!("bench-gate: PASS (decide speedup)");
                } else {
                    for f in &verdict.failures {
                        eprintln!("bench-gate: FAIL: {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("bench-gate: unusable report: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if let Some(minc) = arg("--min-connections") {
        let min_connections: f64 = minc
            .parse()
            .expect("bench-gate: --min-connections must be a number");
        match check_swarm(&fresh, &baseline, min_ratio, min_connections) {
            Ok(verdict) => {
                println!(
                    "bench-gate: swarm {:.0} decisions/s vs baseline {:.0} ({:.0}%, floor {:.0}%)",
                    verdict.fresh_throughput,
                    verdict.baseline_throughput,
                    verdict.ratio * 100.0,
                    verdict.min_ratio * 100.0
                );
                println!(
                    "bench-gate: {:.0} persistent connections (daemon peak {}), floor {:.0}",
                    verdict.connections,
                    verdict
                        .daemon_open_peak
                        .map_or("unreported".to_string(), |p| format!("{p:.0}")),
                    verdict.min_connections
                );
                if verdict.passed() {
                    println!("bench-gate: PASS (swarm)");
                } else {
                    for f in &verdict.failures {
                        eprintln!("bench-gate: FAIL: {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("bench-gate: unusable report: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if flag("--durable") {
        match check_durable(&fresh, &baseline, min_ratio) {
            Ok(verdict) => {
                println!(
                    "bench-gate: durable {:.0} decisions/s vs non-durable baseline {:.0} \
                     ({:.0}%, floor {:.0}%)",
                    verdict.fresh_throughput,
                    verdict.baseline_throughput,
                    verdict.ratio * 100.0,
                    verdict.min_ratio * 100.0
                );
                println!(
                    "bench-gate: restart recovered state in {:.1} ms ({:.0} journal records) -> {}",
                    verdict.restart_recovery_ms,
                    verdict.recovery_replayed_records,
                    if verdict.recovery_matches {
                        "match"
                    } else {
                        "MISMATCH"
                    }
                );
                if verdict.passed() {
                    println!("bench-gate: PASS (durable)");
                } else {
                    for f in &verdict.failures {
                        eprintln!("bench-gate: FAIL: {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("bench-gate: unusable report: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    match check_full_with_allocs(
        &fresh,
        &baseline,
        min_ratio,
        max_p99_ratio,
        min_hit_rate,
        max_allocs,
    ) {
        Ok(verdict) => {
            println!(
                "bench-gate: fresh {:.0} decisions/s vs baseline {:.0} ({:.0}%, floor {:.0}%)",
                verdict.fresh_throughput,
                verdict.baseline_throughput,
                verdict.ratio * 100.0,
                verdict.min_ratio * 100.0
            );
            println!(
                "bench-gate: fresh p99 {:.0}µs vs baseline {:.0}µs ({:.0}%, ceiling {:.0}%)",
                verdict.fresh_p99_us,
                verdict.baseline_p99_us,
                verdict.p99_ratio * 100.0,
                verdict.max_p99_ratio * 100.0
            );
            match verdict.fresh_hit_rate {
                Some(rate) => println!(
                    "bench-gate: fresh path-cache hit rate {:.1}% (floor {:.1}%)",
                    rate * 100.0,
                    verdict.min_hit_rate * 100.0
                ),
                None => println!("bench-gate: fresh report carries no path-cache hit rate"),
            }
            if let Some(max) = verdict.max_allocs_per_decision {
                match verdict.fresh_allocs_per_decision {
                    Some(allocs) => println!(
                        "bench-gate: fresh {allocs:.1} allocations/decision (ceiling {max:.1})"
                    ),
                    None => println!("bench-gate: fresh report carries no allocs_per_decision"),
                }
            }
            if verdict.passed() {
                println!("bench-gate: PASS");
            } else {
                for f in &verdict.failures {
                    eprintln!("bench-gate: FAIL: {f}");
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("bench-gate: unusable report: {e}");
            std::process::exit(2);
        }
    }
}
