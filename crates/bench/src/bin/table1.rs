//! Prints Table 1 (the input traffic profiles) plus derived quantities
//! the admission math hinges on (T_on, mean-rate e2e bound on the 5-hop
//! path), as a sanity anchor for the other experiments.

use qos_units::Nanos;
use vtrs::reference::{HopKind, HopSpec, PathSpec};

fn main() {
    let path = PathSpec::new(vec![
        HopSpec {
            kind: HopKind::RateBased,
            psi: Nanos::from_millis(8),
            prop_delay: Nanos::ZERO,
        };
        5
    ]);
    println!("Table 1: traffic profiles used in the simulations");
    println!(
        "{:<5} {:>10} {:>12} {:>12} {:>10} {:>8} {:>8} | {:>8} {:>14}",
        "Type",
        "Burst(b)",
        "Mean(b/s)",
        "Peak(b/s)",
        "MaxPkt(B)",
        "D1(s)",
        "D2(s)",
        "T_on(s)",
        "bound@mean(s)"
    );
    for row in workload::profiles::table1() {
        let p = row.profile;
        let bound = vtrs::delay::e2e_delay_bound(&p, &path, p.l_max, p.rho, Nanos::ZERO)
            .expect("mean rate is valid");
        println!(
            "{:<5} {:>10} {:>12} {:>12} {:>10} {:>8.2} {:>8.2} | {:>8.2} {:>14.6}",
            row.flow_type,
            p.sigma.as_bits(),
            p.rho.as_bps(),
            p.peak.as_bps(),
            p.l_max.as_bytes_floor(),
            row.delay_loose.as_secs_f64(),
            row.delay_tight.as_secs_f64(),
            p.t_on().as_secs_f64(),
            bound.as_secs_f64(),
        );
    }
}
