//! Regenerates the Figure-7 transient demonstration: a naive macroflow
//! rate change violates the new edge-delay bound; the contingency
//! bandwidth of Theorem 2 repairs it. Runs the real packet-level VTRS
//! data plane.

fn main() {
    let r = bb_bench::fig7::run();
    print!("{}", bb_bench::fig7::render(&r));
}
