//! Extension experiment: reservation set-up latency, BB vs. hop-by-hop.
//!
//! §2.2 claims the path-oriented approach "can significantly reduce the
//! time of conducting admission control and resource reservation". With
//! a per-hop control-message latency `ℓ` (propagation + processing at a
//! router's slow path) and an edge↔BB latency `ℓ_bb`:
//!
//! * **BB/VTRS**: request to the broker, one in-memory path-wide test,
//!   reply — `2·ℓ_bb` of wire time, independent of path length;
//! * **IntServ/RSVP**: the setup message visits every hop (local test +
//!   state install), and the reserve confirmation travels back —
//!   `2·h·ℓ` plus `h` router slow-path visits, and the per-flow state
//!   must then be refreshed forever.
//!
//! This binary models both with ℓ = ℓ_bb = 5 ms of one-way message
//! latency and the measured per-decision compute from this machine.

use std::time::Instant;

use bb_core::intserv::IntServ;
use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bb_telemetry::{HistogramSnapshot, LogHistogram};
use netsim::topology::{LinkId, SchedulerSpec, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use workload::profiles::type0;

fn chain(hops: usize) -> (netsim::topology::Topology, Vec<LinkId>) {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..=hops).map(|i| b.node(format!("n{i}"))).collect();
    let route = (0..hops)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_mbps(100),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    (b.build(), route)
}

#[derive(serde::Serialize)]
struct Row {
    hops: usize,
    bb_compute_us: f64,
    bb_compute_p50_us: Option<f64>,
    bb_compute_p99_us: Option<f64>,
    rsvp_compute_us: f64,
    bb_total_ms: f64,
    rsvp_total_ms: f64,
    bb_decision_ns: HistogramSnapshot,
}

#[derive(serde::Serialize)]
struct Report {
    message_one_way_ms: f64,
    rows: Vec<Row>,
}

fn main() {
    const MSG_MS: f64 = 5.0; // one-way control-message latency
    let profile = type0();
    let d_req = Nanos::from_secs(20);
    let mut rows = Vec::new();

    println!("reservation set-up latency model (message one-way = {MSG_MS} ms):");
    println!(
        "{:>6} {:>16} {:>16} {:>12} {:>12}",
        "hops", "BB compute(us)", "RSVP compute(us)", "BB total(ms)", "RSVP total(ms)"
    );
    for hops in [2usize, 5, 10, 20, 40] {
        let (topo, route) = chain(hops);

        // Measure the broker's in-memory decision cost.
        let mut broker = Broker::new(topo.clone(), BrokerConfig::default());
        let pid = broker.register_route(&route);
        let hist = LogHistogram::new();
        let t0 = Instant::now();
        let iters = 2_000u64;
        for k in 0..iters {
            let req = FlowRequest {
                flow: FlowId(k),
                profile,
                d_req,
                service: ServiceKind::PerFlow,
                path: pid,
            };
            let d0 = Instant::now();
            broker.request(Time::ZERO, &req).expect("fat links");
            hist.record(u64::try_from(d0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            broker.release(Time::ZERO, FlowId(k)).unwrap();
        }
        let bb_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let bb_snap = hist.snapshot();

        // Measure the hop-by-hop walk's compute cost.
        let mut is = IntServ::new(&topo);
        let hop_route: Vec<usize> = route.iter().map(|l| l.0).collect();
        let t0 = Instant::now();
        for k in 0..iters {
            is.request(Time::ZERO, FlowId(k), &profile, d_req, &hop_route)
                .expect("fat links");
            is.release(FlowId(k)).unwrap();
        }
        let rsvp_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

        // Wire time: BB = 2 messages; RSVP = setup + reserve along the
        // whole path (2·h one-way messages).
        let bb_total = 2.0 * MSG_MS + bb_us / 1e3;
        let rsvp_total = 2.0 * hops as f64 * MSG_MS + rsvp_us / 1e3;
        println!(
            "{:>6} {:>16.2} {:>16.2} {:>12.2} {:>12.2}",
            hops, bb_us, rsvp_us, bb_total, rsvp_total
        );
        rows.push(Row {
            hops,
            bb_compute_us: bb_us,
            bb_compute_p50_us: bb_snap.quantile_ns(0.50).map(|ns| ns as f64 / 1e3),
            bb_compute_p99_us: bb_snap.quantile_ns(0.99).map(|ns| ns as f64 / 1e3),
            rsvp_compute_us: rsvp_us,
            bb_total_ms: bb_total,
            rsvp_total_ms: rsvp_total,
            bb_decision_ns: bb_snap,
        });
    }
    let report = Report {
        message_one_way_ms: MSG_MS,
        rows,
    };
    std::fs::write(
        "BENCH_setup_latency.json",
        serde::json::to_string_pretty(&report),
    )
    .expect("write BENCH_setup_latency.json");
    println!(
        "\nthe broker's set-up latency is flat in path length; hop-by-hop grows\n\
         linearly — plus soft-state refresh traffic forever after.\n\
         wrote BENCH_setup_latency.json"
    );
}
