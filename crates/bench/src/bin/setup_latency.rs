//! Extension experiment: reservation set-up latency, BB vs. hop-by-hop.
//!
//! §2.2 claims the path-oriented approach "can significantly reduce the
//! time of conducting admission control and resource reservation". With
//! a per-hop control-message latency `ℓ` (propagation + processing at a
//! router's slow path) and an edge↔BB latency `ℓ_bb`:
//!
//! * **BB/VTRS**: request to the broker, one in-memory path-wide test,
//!   reply — `2·ℓ_bb` of wire time, independent of path length;
//! * **IntServ/RSVP**: the setup message visits every hop (local test +
//!   state install), and the reserve confirmation travels back —
//!   `2·h·ℓ` plus `h` router slow-path visits, and the per-flow state
//!   must then be refreshed forever.
//!
//! This binary models both with ℓ = ℓ_bb = 5 ms of one-way message
//! latency and the measured per-decision compute from this machine.
//!
//! It also times **crash recovery** (bb-durable): how long a broker
//! takes to come back from a snapshot versus from a pure journal
//! replay, per resident-flow count — the restart-availability cost of
//! concentrating all reservation state in the broker.

use std::time::Instant;

use bb_core::intserv::IntServ;
use bb_core::{Broker, BrokerConfig, BrokerShard, FlowRequest, PathId, ServiceKind};
use bb_durable::{replay, ShardStore, WalRecord};
use bb_telemetry::{HistogramSnapshot, LogHistogram};
use netsim::topology::{LinkId, SchedulerSpec, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use workload::profiles::type0;

fn chain(hops: usize, rate: Rate) -> (netsim::topology::Topology, Vec<LinkId>) {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..=hops).map(|i| b.node(format!("n{i}"))).collect();
    let route = (0..hops)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                rate,
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    (b.build(), route)
}

#[derive(serde::Serialize)]
struct Row {
    hops: usize,
    bb_compute_us: f64,
    bb_compute_p50_us: Option<f64>,
    bb_compute_p99_us: Option<f64>,
    rsvp_compute_us: f64,
    bb_total_ms: f64,
    rsvp_total_ms: f64,
    bb_decision_ns: HistogramSnapshot,
}

#[derive(serde::Serialize)]
struct RecoveryRow {
    flows: u64,
    /// Restart from a sealed snapshot (graceful-shutdown path).
    snapshot_ms: f64,
    /// Restart from a journal-only chain (crash path): every admission
    /// replays through the monolithic entry points.
    replay_ms: f64,
    replayed_records: u64,
}

/// Snapshot codec comparison: the same [`bb_core::persist::BrokerImage`] encoded and
/// decoded through the legacy JSON path and the binary `binfmt` path
/// that is now the write default.
#[derive(serde::Serialize)]
struct CodecRow {
    flows: u64,
    json_bytes: u64,
    binary_bytes: u64,
    json_encode_ms: f64,
    json_decode_ms: f64,
    binary_encode_ms: f64,
    binary_decode_ms: f64,
}

#[derive(serde::Serialize)]
struct Report {
    message_one_way_ms: f64,
    rows: Vec<Row>,
    recovery: Vec<RecoveryRow>,
    snapshot_codec: Vec<CodecRow>,
}

/// Times a recovery (`ShardStore::open` + journal replay into a fresh
/// shard) and returns `(elapsed ms, records replayed, resident flows)`.
fn time_recovery(dir: &std::path::Path, mk: impl Fn() -> BrokerShard) -> (f64, u64, u64) {
    let t0 = Instant::now();
    let (store, outcome) = ShardStore::open(dir).expect("recover");
    let mut shard = mk();
    let summary = replay(&mut shard, &outcome);
    store
        .commit_recovery(&shard.export_image(), outcome.max_now.unwrap_or(Time::ZERO))
        .expect("seal recovery");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (ms, summary.total(), shard.broker().flows().len() as u64)
}

/// Recovery-time measurement: build a durable shard directory holding
/// `flows` admissions two ways — sealed into a snapshot, and as a raw
/// journal — and time a cold restart from each.
fn recovery_row(flows: u64) -> RecoveryRow {
    // Gigabit links: room for the 8000-flow row (type0 reserves
    // 50 kb/s per flow, so 100 Mb/s would cap out at 2000).
    let (topo, route) = chain(5, Rate::from_mbps(1_000));
    let mk = || {
        BrokerShard::new(
            0,
            1,
            &topo,
            &BrokerConfig::default(),
            &[(PathId(0), route.clone())],
        )
    };
    let dir =
        std::env::temp_dir().join(format!("bb-bench-recovery-{}-{flows}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Journal-only state: an empty initial snapshot, then one Admit
    // record per flow, exactly what a crashed daemon leaves behind.
    let mut shard = mk();
    let (store, _) = ShardStore::open(&dir).expect("open fresh");
    store
        .commit_recovery(&shard.export_image(), Time::ZERO)
        .expect("seal");
    for k in 0..flows {
        let req = FlowRequest {
            flow: FlowId(k),
            profile: type0(),
            d_req: Nanos::from_secs(20),
            service: ServiceKind::PerFlow,
            path: PathId(0),
        };
        let plan = shard.decide(&req);
        shard.commit(Time::ZERO, &plan).expect("fat links");
        store
            .append(&WalRecord::Admit {
                now: Time::ZERO,
                request: plan.request,
            })
            .expect("append");
    }
    store.flush().expect("flush");
    drop(store);
    let (replay_ms, replayed_records, resident) = time_recovery(&dir, mk);
    assert_eq!(resident, flows, "journal replay must rebuild every flow");
    assert_eq!(replayed_records, flows);

    // The timed recovery above sealed the replayed state into a fresh
    // snapshot with an empty journal — which is exactly the
    // graceful-shutdown layout, so restarting again times the
    // snapshot-only path.
    let (snapshot_ms, snap_records, resident) = time_recovery(&dir, mk);
    assert_eq!(resident, flows, "snapshot must carry every flow");
    assert_eq!(snap_records, 0, "sealed recovery leaves no journal tail");

    let _ = std::fs::remove_dir_all(&dir);
    RecoveryRow {
        flows,
        snapshot_ms,
        replay_ms,
        replayed_records,
    }
}

/// Times `iters` runs of `f` and returns milliseconds per run.
fn per_run_ms(iters: u64, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

/// Snapshot codec measurement: a shard image holding `flows` resident
/// flows pushed through both snapshot codecs, timing encode and decode
/// separately.
fn codec_row(flows: u64) -> CodecRow {
    let (topo, route) = chain(5, Rate::from_mbps(1_000));
    let mut shard = BrokerShard::new(0, 1, &topo, &BrokerConfig::default(), &[(PathId(0), route)]);
    for k in 0..flows {
        let req = FlowRequest {
            flow: FlowId(k),
            profile: type0(),
            d_req: Nanos::from_secs(20),
            service: ServiceKind::PerFlow,
            path: PathId(0),
        };
        let plan = shard.decide(&req);
        shard.commit(Time::ZERO, &plan).expect("fat links");
    }
    let image = shard.export_image();
    let iters = 40u64;

    let json = serde::json::to_string(&image);
    let json_encode_ms = per_run_ms(iters, || {
        std::hint::black_box(serde::json::to_string(std::hint::black_box(&image)));
    });
    let json_decode_ms = per_run_ms(iters, || {
        let decoded: bb_core::persist::BrokerImage =
            serde::json::from_str(std::hint::black_box(&json)).expect("json round trip");
        std::hint::black_box(decoded);
    });

    let mut binary = Vec::new();
    bb_durable::binfmt::encode_payload(&image, &mut binary);
    assert_eq!(
        bb_durable::binfmt::decode_payload::<bb_core::persist::BrokerImage>(&binary)
            .expect("binary round trip"),
        image
    );
    let binary_encode_ms = per_run_ms(iters, || {
        let mut out = Vec::new();
        bb_durable::binfmt::encode_payload(std::hint::black_box(&image), &mut out);
        std::hint::black_box(out);
    });
    let binary_decode_ms = per_run_ms(iters, || {
        let decoded = bb_durable::binfmt::decode_payload::<bb_core::persist::BrokerImage>(
            std::hint::black_box(&binary),
        )
        .expect("binary round trip");
        std::hint::black_box(decoded);
    });

    CodecRow {
        flows,
        json_bytes: json.len() as u64,
        binary_bytes: binary.len() as u64,
        json_encode_ms,
        json_decode_ms,
        binary_encode_ms,
        binary_decode_ms,
    }
}

fn main() {
    const MSG_MS: f64 = 5.0; // one-way control-message latency
    let profile = type0();
    let d_req = Nanos::from_secs(20);
    let mut rows = Vec::new();

    println!("reservation set-up latency model (message one-way = {MSG_MS} ms):");
    println!(
        "{:>6} {:>16} {:>16} {:>12} {:>12}",
        "hops", "BB compute(us)", "RSVP compute(us)", "BB total(ms)", "RSVP total(ms)"
    );
    for hops in [2usize, 5, 10, 20, 40] {
        let (topo, route) = chain(hops, Rate::from_mbps(100));

        // Measure the broker's in-memory decision cost.
        let mut broker = Broker::new(topo.clone(), BrokerConfig::default());
        let pid = broker.register_route(&route);
        let hist = LogHistogram::new();
        let t0 = Instant::now();
        let iters = 2_000u64;
        for k in 0..iters {
            let req = FlowRequest {
                flow: FlowId(k),
                profile,
                d_req,
                service: ServiceKind::PerFlow,
                path: pid,
            };
            let d0 = Instant::now();
            broker.request(Time::ZERO, &req).expect("fat links");
            hist.record(u64::try_from(d0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            broker.release(Time::ZERO, FlowId(k)).unwrap();
        }
        let bb_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
        let bb_snap = hist.snapshot();

        // Measure the hop-by-hop walk's compute cost.
        let mut is = IntServ::new(&topo);
        let hop_route: Vec<usize> = route.iter().map(|l| l.0).collect();
        let t0 = Instant::now();
        for k in 0..iters {
            is.request(Time::ZERO, FlowId(k), &profile, d_req, &hop_route)
                .expect("fat links");
            is.release(FlowId(k)).unwrap();
        }
        let rsvp_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

        // Wire time: BB = 2 messages; RSVP = setup + reserve along the
        // whole path (2·h one-way messages).
        let bb_total = 2.0 * MSG_MS + bb_us / 1e3;
        let rsvp_total = 2.0 * hops as f64 * MSG_MS + rsvp_us / 1e3;
        println!(
            "{:>6} {:>16.2} {:>16.2} {:>12.2} {:>12.2}",
            hops, bb_us, rsvp_us, bb_total, rsvp_total
        );
        rows.push(Row {
            hops,
            bb_compute_us: bb_us,
            bb_compute_p50_us: bb_snap.quantile_ns(0.50).map(|ns| ns as f64 / 1e3),
            bb_compute_p99_us: bb_snap.quantile_ns(0.99).map(|ns| ns as f64 / 1e3),
            rsvp_compute_us: rsvp_us,
            bb_total_ms: bb_total,
            rsvp_total_ms: rsvp_total,
            bb_decision_ns: bb_snap,
        });
    }
    println!("\ncrash-recovery time (bb-durable, 5-hop chain, one shard):");
    println!("{:>8} {:>14} {:>14}", "flows", "snapshot(ms)", "replay(ms)");
    let mut recovery = Vec::new();
    for flows in [500u64, 2_000, 8_000] {
        let row = recovery_row(flows);
        println!(
            "{:>8} {:>14.2} {:>14.2}",
            row.flows, row.snapshot_ms, row.replay_ms
        );
        recovery.push(row);
    }

    println!("\nsnapshot codec (BrokerImage, JSON vs binary binfmt):");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "flows", "json(B)", "bin(B)", "jenc(ms)", "jdec(ms)", "benc(ms)", "bdec(ms)"
    );
    let mut snapshot_codec = Vec::new();
    for flows in [500u64, 2_000, 8_000] {
        let row = codec_row(flows);
        println!(
            "{:>8} {:>12} {:>12} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            row.flows,
            row.json_bytes,
            row.binary_bytes,
            row.json_encode_ms,
            row.json_decode_ms,
            row.binary_encode_ms,
            row.binary_decode_ms
        );
        snapshot_codec.push(row);
    }

    let report = Report {
        message_one_way_ms: MSG_MS,
        rows,
        recovery,
        snapshot_codec,
    };
    std::fs::write(
        "BENCH_setup_latency.json",
        serde::json::to_string_pretty(&report),
    )
    .expect("write BENCH_setup_latency.json");
    println!(
        "\nthe broker's set-up latency is flat in path length; hop-by-hop grows\n\
         linearly — plus soft-state refresh traffic forever after.\n\
         wrote BENCH_setup_latency.json"
    );
}
