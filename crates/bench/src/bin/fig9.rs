//! Regenerates Figure 9: mean reserved bandwidth per flow vs. number of
//! flows admitted (mixed setting, D = 2.19 s), CSV to stdout.

use qos_units::Nanos;

fn main() {
    let series = bb_bench::fig9::run(Nanos::from_millis(2_190));
    print!("{}", bb_bench::fig9::render(&series));
}
