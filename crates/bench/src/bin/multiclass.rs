//! Extension experiment (beyond the paper's figures): all four Table-1
//! traffic types served as four delay service classes simultaneously.
//!
//! The paper evaluates one class at a time; this run offers a dynamic mix
//! of all four types on the Figure-8 S1→D1 path and reports, per class,
//! the admitted/blocked counts and the broker's state footprint — four
//! macroflows carry hundreds of microflows, which is the §4 scalability
//! point in action.

use bb_core::admission::aggregate::ClassSpec;
use bb_core::contingency::ContingencyPolicy;
use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use netsim::topology::{SchedulerSpec, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use workload::arrivals::{FlowEventKind, FlowProcess};
use workload::profiles::table1;

fn main() {
    // Figure-8 S1→D1 path, rate-based setting.
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = ["I1", "R2", "R3", "R4", "R5", "E1"]
        .iter()
        .map(|n| b.node(*n))
        .collect();
    let route: Vec<_> = (0..5)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();

    let rows = table1();
    let classes: Vec<ClassSpec> = rows
        .iter()
        .map(|r| ClassSpec {
            id: r.flow_type,
            d_req: r.delay_loose,
            cd: Nanos::from_millis(240),
        })
        .collect();
    let mut broker = Broker::new(
        topo,
        BrokerConfig {
            contingency: ContingencyPolicy::Feedback,
            classes,
            ..BrokerConfig::default()
        },
    );
    let pid = broker.register_route(&route);

    // 2000 s of Poisson arrivals at 0.25 flows/s, exponential holding
    // (mean 200 s); the type of each flow cycles through Table 1.
    let process = FlowProcess::generate(
        7,
        0.25,
        Nanos::from_secs(200),
        Time::from_secs_f64(2_000.0),
        1,
    );
    let mut admitted = [0u64; 4];
    let mut blocked = [0u64; 4];
    let mut live = std::collections::HashMap::new();
    for ev in process.events() {
        broker.tick(ev.at);
        // Feedback contingency: with mean-rate sources the fluid backlog
        // is negligible — model the edge reporting empty immediately.
        let ids: Vec<FlowId> = broker.macroflows().map(|m| m.id).collect();
        for id in ids {
            broker.edge_buffer_empty(ev.at, id);
        }
        let ty = (ev.flow.0 % 4) as usize;
        match ev.kind {
            FlowEventKind::Arrival => {
                let req = FlowRequest {
                    flow: ev.flow,
                    profile: rows[ty].profile,
                    d_req: rows[ty].delay_loose,
                    service: ServiceKind::Class(rows[ty].flow_type),
                    path: pid,
                };
                match broker.request(ev.at, &req) {
                    Ok(_) => {
                        admitted[ty] += 1;
                        live.insert(ev.flow, ());
                    }
                    Err(_) => blocked[ty] += 1,
                }
            }
            FlowEventKind::Departure => {
                if live.remove(&ev.flow).is_some() {
                    broker.release(ev.at, ev.flow).expect("live flow");
                }
            }
        }
    }

    // Flush trailing contingency so the footprint report is steady-state.
    let end = Time::from_secs_f64(10_000.0);
    let ids: Vec<FlowId> = broker.macroflows().map(|m| m.id).collect();
    for id in ids {
        broker.edge_buffer_empty(end, id);
    }
    broker.tick(end);

    println!("four Table-1 delay classes sharing the Figure-8 path (λ = 0.25/s, 2000 s):");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "class", "D(s)", "admitted", "blocked"
    );
    for (ty, row) in rows.iter().enumerate() {
        println!(
            "{:>6} {:>10.2} {:>10} {:>10}",
            row.flow_type,
            row.delay_loose.as_secs_f64(),
            admitted[ty],
            blocked[ty]
        );
    }
    let micro: u64 = broker.macroflows().map(|m| m.members).sum();
    println!(
        "\nbroker state at the end: {} macroflows carrying {} live microflows;\n\
         core routers: 0 QoS entries (per-flow or aggregate) throughout.",
        broker.macroflows().count(),
        micro
    );
}
