//! Experiment harness reproducing every table and figure of §5.
//!
//! Each experiment is a library function returning structured results
//! (so integration tests can assert the paper's numbers) plus a thin
//! binary that prints the same rows/series the paper reports:
//!
//! | artifact | module | binary |
//! |----------|--------|--------|
//! | Table 1 (inputs)            | [`workload::profiles`] | `table1` |
//! | Table 2 (calls admitted)    | [`table2`]             | `table2` |
//! | Figure 7 (transient demo)   | [`fig7`]               | `fig7_transient` |
//! | Figure 9 (mean reserved bw) | [`fig9`]               | `fig9` |
//! | Figure 10 (blocking rates)  | [`fig10`]              | `fig10` |
//!
//! The shared Figure-8 topology lives in [`figure8`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig10;
pub mod fig7;
pub mod fig9;
pub mod figure8;
pub mod gate;
pub mod table2;
