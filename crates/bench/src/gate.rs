//! The CI bench-regression gate over `BENCH_loadgen.json`.
//!
//! CI runs `bb-loadgen --verify` with the exact configuration the
//! checked-in baseline was produced with, then calls [`check`] on the
//! fresh and baseline reports. The gate fails when:
//!
//! * the fresh run's `verified` field is not `true` — the daemon's
//!   concurrent admissions diverged from the serial reference broker;
//! * the fresh run's throughput dropped more than the allowed fraction
//!   below the baseline's (default floor: 60 % of baseline, i.e. a
//!   >40 % regression);
//! * the fresh run's p99 setup latency rose above the allowed multiple
//!   of the baseline's (default ceiling: 1.5× baseline p99) — the
//!   tail is where a serialized commit queue or a cold path cache
//!   shows up first, long before mean throughput collapses;
//! * the fresh run's `path_cache_hit_rate` is missing or fell below
//!   the absolute floor (default: [`DEFAULT_MIN_HIT_RATE`]) — a decide
//!   phase that recomputes its path summary every time is no longer
//!   O(1), however fast the run happened to be;
//! * the two reports were produced with different workload
//!   configurations — comparing throughputs across configs is
//!   meaningless, so a config drift is itself a failure (fix the
//!   baseline and the CI invocation together).
//!
//! Throughput on shared CI runners is noisy; the generous 40 % margin
//! is deliberate — the gate exists to catch collapses (an accidental
//! global lock, an O(n²) slip), not single-digit regressions.

use serde::json::Value;

/// Fraction of baseline throughput the fresh run must reach.
pub const DEFAULT_MIN_RATIO: f64 = 0.6;

/// Multiple of the baseline's p99 setup latency the fresh run must
/// stay under.
pub const DEFAULT_MAX_P99_RATIO: f64 = 1.5;

/// Absolute floor on the fresh run's decide-phase path-summary cache
/// hit rate. The steady-state rate under the CI workload is ~0.7; a
/// drop below half signals the epoch lanes are being invalidated far
/// too eagerly (every decide recomputing its summary), which destroys
/// the O(1) decide long before throughput visibly collapses.
pub const DEFAULT_MIN_HIT_RATE: f64 = 0.5;

/// Workload-configuration fields that must match between the fresh and
/// baseline reports for a throughput comparison to be meaningful.
const CONFIG_FIELDS: [&str; 6] = [
    "pods",
    "hops",
    "clients",
    "requests_per_client",
    "offered_rate_per_client_hz",
    "seed",
];

/// Outcome of gating a fresh report against the baseline.
#[derive(Debug, Clone, serde::Serialize)]
pub struct GateReport {
    /// Fresh run's decision throughput (decisions/s).
    pub fresh_throughput: f64,
    /// Baseline's decision throughput (decisions/s).
    pub baseline_throughput: f64,
    /// `fresh_throughput / baseline_throughput`.
    pub ratio: f64,
    /// Minimum acceptable ratio.
    pub min_ratio: f64,
    /// Fresh run's p99 setup latency (µs).
    pub fresh_p99_us: f64,
    /// Baseline's p99 setup latency (µs).
    pub baseline_p99_us: f64,
    /// `fresh_p99_us / baseline_p99_us`.
    pub p99_ratio: f64,
    /// Maximum acceptable p99 ratio.
    pub max_p99_ratio: f64,
    /// Fresh run's path-summary cache hit rate, if the report has one.
    pub fresh_hit_rate: Option<f64>,
    /// Minimum acceptable hit rate (absolute, fresh run only).
    pub min_hit_rate: f64,
    /// Fresh run's heap allocations per decision, if the report has one
    /// (requires a `count-allocs` bb-loadgen build).
    pub fresh_allocs_per_decision: Option<f64>,
    /// Ceiling on allocations per decision; `None` when not gated.
    pub max_allocs_per_decision: Option<f64>,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl GateReport {
    /// True when no gate condition failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn number(report: &Value, field: &str) -> Result<f64, String> {
    report
        .field(field)
        .and_then(Value::as_f64)
        .map_err(|e| format!("bad `{field}`: {e}"))
}

/// Accumulates every config-field mismatch between the two reports into
/// `failures` — one pass over all fields, so a report that drifted on
/// three knobs reports three drifts, not just the first. Missing or
/// non-numeric fields are themselves failures, stated with what was
/// expected and what was found.
fn config_drift(fresh: &Value, baseline: &Value, fields: &[&str], failures: &mut Vec<String>) {
    for field in fields {
        match (number(fresh, field), number(baseline, field)) {
            (Ok(f), Ok(b)) if f != b => failures.push(format!(
                "config drift on `{field}`: expected {b} (baseline), actual {f} (fresh)"
            )),
            (Ok(_), Ok(_)) => {}
            (Err(e), _) => failures.push(format!("fresh: {e}")),
            (_, Err(e)) => failures.push(format!("baseline: {e}")),
        }
    }
}

/// Fetches a numeric gate input, converting a structural problem into a
/// recorded failure instead of aborting the whole gate — the caller
/// gets `None` and keeps checking everything else, so one unusable
/// field cannot hide an unrelated regression in the same run.
fn gated_number(
    report: &Value,
    label: &str,
    field: &str,
    failures: &mut Vec<String>,
) -> Option<f64> {
    match number(report, field) {
        Ok(v) => Some(v),
        Err(e) => {
            failures.push(format!("{label}: {e}"));
            None
        }
    }
}

/// Gates a fresh `BENCH_loadgen.json` report against the baseline with
/// the default latency ceiling ([`DEFAULT_MAX_P99_RATIO`]).
///
/// # Errors
///
/// Practically always returns `Ok`: field-level problems (missing or
/// non-numeric fields) are accumulated into `failures` alongside the
/// regressions, so one structural miss cannot hide the rest of the
/// verdict.
pub fn check(fresh: &Value, baseline: &Value, min_ratio: f64) -> Result<GateReport, String> {
    check_with_latency(fresh, baseline, min_ratio, DEFAULT_MAX_P99_RATIO)
}

/// Gates a fresh report against the baseline: throughput floor AND p99
/// setup-latency ceiling.
///
/// # Errors
///
/// As [`check`]: field-level problems accumulate into `failures`
/// rather than aborting the pass.
pub fn check_with_latency(
    fresh: &Value,
    baseline: &Value,
    min_ratio: f64,
    max_p99_ratio: f64,
) -> Result<GateReport, String> {
    check_full(
        fresh,
        baseline,
        min_ratio,
        max_p99_ratio,
        DEFAULT_MIN_HIT_RATE,
    )
}

/// Gates a fresh report against the baseline: throughput floor, p99
/// setup-latency ceiling, AND path-cache hit-rate floor (an absolute
/// floor on the fresh run — the cache either works or it doesn't, so
/// no baseline ratio is involved).
///
/// # Errors
///
/// As [`check`]: field-level problems accumulate into `failures`
/// rather than aborting the pass.
pub fn check_full(
    fresh: &Value,
    baseline: &Value,
    min_ratio: f64,
    max_p99_ratio: f64,
    min_hit_rate: f64,
) -> Result<GateReport, String> {
    check_full_with_allocs(
        fresh,
        baseline,
        min_ratio,
        max_p99_ratio,
        min_hit_rate,
        None,
    )
}

/// [`check_full`] plus an optional ceiling on the fresh run's heap
/// allocations per decision.
///
/// The ceiling is absolute and strict (`>` fails, exactly at the
/// ceiling passes). When `max_allocs_per_decision` is `Some`, a fresh
/// report without an `allocs_per_decision` number fails the gate — the
/// ceiling demands a `count-allocs` build; without the ceiling the
/// field is ignored entirely, so ordinary builds gate as before.
///
/// # Errors
///
/// As [`check`]: field-level problems accumulate into `failures`
/// rather than aborting the pass.
pub fn check_full_with_allocs(
    fresh: &Value,
    baseline: &Value,
    min_ratio: f64,
    max_p99_ratio: f64,
    min_hit_rate: f64,
    max_allocs_per_decision: Option<f64>,
) -> Result<GateReport, String> {
    let mut failures = Vec::new();

    config_drift(fresh, baseline, &CONFIG_FIELDS, &mut failures);

    match fresh.field("verified") {
        Ok(Value::Bool(true)) => {}
        Ok(Value::Bool(false)) => failures.push(
            "fresh run failed verification: expected verified=true, actual false (daemon \
             admissions diverged from the serial reference)"
                .to_string(),
        ),
        Ok(_) => {
            failures.push("fresh run has no verification verdict: rerun with --verify".to_string())
        }
        Err(e) => failures.push(format!("fresh: bad `verified`: {e}")),
    }

    // Every check below records its own failure and keeps going: the
    // gate's whole verdict lands in one pass, so a run that regressed
    // on three axes reports all three instead of whichever the code
    // happened to test first.
    let fresh_throughput =
        gated_number(fresh, "fresh", "throughput_decisions_per_s", &mut failures).unwrap_or(0.0);
    let baseline_throughput = gated_number(
        baseline,
        "baseline",
        "throughput_decisions_per_s",
        &mut failures,
    )
    .unwrap_or(0.0);
    let ratio = if baseline_throughput > 0.0 {
        fresh_throughput / baseline_throughput
    } else {
        failures.push(format!(
            "baseline throughput is {baseline_throughput}; regenerate BENCH_loadgen.json"
        ));
        0.0
    };
    if baseline_throughput > 0.0 && ratio < min_ratio {
        failures.push(format!(
            "throughput regression: expected >= {:.0} decisions/s ({:.0}% of the \
             {baseline_throughput:.0} baseline), actual {fresh_throughput:.0} ({:.0}%)",
            baseline_throughput * min_ratio,
            min_ratio * 100.0,
            ratio * 100.0
        ));
    }

    let fresh_p99_us =
        gated_number(fresh, "fresh", "setup_latency_p99_us", &mut failures).unwrap_or(0.0);
    let baseline_p99_us =
        gated_number(baseline, "baseline", "setup_latency_p99_us", &mut failures).unwrap_or(0.0);
    let p99_ratio = if baseline_p99_us > 0.0 {
        fresh_p99_us / baseline_p99_us
    } else {
        failures.push(format!(
            "baseline p99 setup latency is {baseline_p99_us}; regenerate BENCH_loadgen.json"
        ));
        0.0
    };
    if baseline_p99_us > 0.0 && p99_ratio > max_p99_ratio {
        failures.push(format!(
            "latency regression: expected p99 setup latency <= {:.0}µs ({:.0}% of the \
             {baseline_p99_us:.0}µs baseline), actual {fresh_p99_us:.0}µs ({:.0}%)",
            baseline_p99_us * max_p99_ratio,
            max_p99_ratio * 100.0,
            p99_ratio * 100.0
        ));
    }

    let fresh_hit_rate = number(fresh, "path_cache_hit_rate").ok();
    match fresh_hit_rate {
        Some(rate) if rate < min_hit_rate => failures.push(format!(
            "path-cache collapse: hit rate {:.1}% is below the {:.1}% floor \
             (summaries are being recomputed on the decide hot path)",
            rate * 100.0,
            min_hit_rate * 100.0
        )),
        Some(_) => {}
        None => failures.push(
            "fresh run reports no `path_cache_hit_rate`: rerun with a current bb-loadgen"
                .to_string(),
        ),
    }

    let fresh_allocs_per_decision = number(fresh, "allocs_per_decision").ok();
    if let Some(max_allocs) = max_allocs_per_decision {
        match fresh_allocs_per_decision {
            Some(allocs) if allocs > max_allocs => failures.push(format!(
                "allocation regression: {allocs:.1} heap allocations per decision is above the \
                 {max_allocs:.1} ceiling (something on the decide path started allocating)"
            )),
            Some(_) => {}
            None => failures.push(
                "fresh run reports no `allocs_per_decision`: rerun a bb-loadgen built with \
                 --features count-allocs"
                    .to_string(),
            ),
        }
    }

    Ok(GateReport {
        fresh_throughput,
        baseline_throughput,
        ratio,
        min_ratio,
        fresh_p99_us,
        baseline_p99_us,
        p99_ratio,
        max_p99_ratio,
        fresh_hit_rate,
        min_hit_rate,
        fresh_allocs_per_decision,
        max_allocs_per_decision,
        failures,
    })
}

/// Outcome of gating a `--connections` swarm run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SwarmGateReport {
    /// Swarm run's decision throughput (decisions/s).
    pub fresh_throughput: f64,
    /// Baseline's decision throughput (decisions/s).
    pub baseline_throughput: f64,
    /// `fresh_throughput / baseline_throughput`.
    pub ratio: f64,
    /// Minimum acceptable ratio.
    pub min_ratio: f64,
    /// Persistent connections the load generator held open.
    pub connections: f64,
    /// Peak concurrently-open connections the daemon itself observed
    /// (`stats.metrics.conns.open_peak`), when the report carries one.
    pub daemon_open_peak: Option<f64>,
    /// Minimum acceptable connection count.
    pub min_connections: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl SwarmGateReport {
    /// True when no gate condition failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates a `--connections` swarm run against the baseline: the
/// high-fan-in shape must not cost throughput. The gate fails when:
///
/// * the workload configurations differ (same rule as [`check_full`]);
/// * the report's `concurrent_connections` is missing (the run was not
///   a swarm run) or below `min_connections`;
/// * the daemon's own `stats.metrics.conns.open_peak`, when present,
///   is below `min_connections` — the generator claiming N connections
///   is not enough; the daemon must have seen them open at once;
/// * throughput fell below `min_ratio` of the baseline — the event
///   loop must hold the single-digit-connection throughput while
///   fronting thousands of edges.
///
/// Swarm runs carry no `verified` verdict (replies spread over many
/// sockets no longer pin each pod's request order), so unlike
/// [`check_full`] this gate does not require one.
///
/// # Errors
///
/// Returns `Err` when either report is structurally unusable, distinct
/// from a well-formed report that merely fails the gate.
pub fn check_swarm(
    fresh: &Value,
    baseline: &Value,
    min_ratio: f64,
    min_connections: f64,
) -> Result<SwarmGateReport, String> {
    let mut failures = Vec::new();

    config_drift(fresh, baseline, &CONFIG_FIELDS, &mut failures);

    let connections = number(fresh, "concurrent_connections").unwrap_or(0.0);
    if connections < min_connections {
        failures.push(format!(
            "connection floor: the run held {connections:.0} persistent connections, below the \
             {min_connections:.0} floor (rerun bb-loadgen with --connections)"
        ));
    }
    let daemon_open_peak = fresh
        .field("stats")
        .ok()
        .and_then(|s| s.field("metrics").ok())
        .and_then(|m| m.field("conns").ok())
        .and_then(|c| c.field("open_peak").ok())
        .and_then(|v| v.as_f64().ok());
    if let Some(peak) = daemon_open_peak {
        if peak < min_connections {
            failures.push(format!(
                "connection floor: the daemon observed only {peak:.0} concurrently open \
                 connections at peak, below the {min_connections:.0} floor"
            ));
        }
    }

    let fresh_throughput =
        number(fresh, "throughput_decisions_per_s").map_err(|e| format!("fresh: {e}"))?;
    let baseline_throughput =
        number(baseline, "throughput_decisions_per_s").map_err(|e| format!("baseline: {e}"))?;
    if baseline_throughput <= 0.0 {
        return Err(format!(
            "baseline throughput is {baseline_throughput}; regenerate BENCH_loadgen.json"
        ));
    }
    let ratio = fresh_throughput / baseline_throughput;
    if ratio < min_ratio {
        failures.push(format!(
            "throughput regression under fan-in: {fresh_throughput:.0} decisions/s is {:.0}% of \
             the {baseline_throughput:.0} baseline (floor: {:.0}%)",
            ratio * 100.0,
            min_ratio * 100.0
        ));
    }

    Ok(SwarmGateReport {
        fresh_throughput,
        baseline_throughput,
        ratio,
        min_ratio,
        connections,
        daemon_open_peak,
        min_connections,
        failures,
    })
}

/// Outcome of gating a batched (lock-free decide) run against its
/// locked twin.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DecideSpeedupReport {
    /// Batched run's mean decide-phase cost per decision (ns).
    pub fresh_decide_ns: f64,
    /// Locked run's mean decide-phase cost per decision (ns).
    pub baseline_decide_ns: f64,
    /// `baseline_decide_ns / fresh_decide_ns` — how much cheaper the
    /// lock-free decide is.
    pub speedup: f64,
    /// Minimum acceptable speedup.
    pub min_speedup: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl DecideSpeedupReport {
    /// True when no gate condition failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Total decide-phase CPU and decision count summed over a report's
/// per-shard rows (`stats.metrics.shards[].decide_ns`).
fn decide_cost(report: &Value) -> Result<(f64, f64), String> {
    let shards = report
        .field("stats")
        .and_then(|s| s.field("metrics"))
        .and_then(|m| m.field("shards"))
        .map_err(|e| format!("bad `stats.metrics.shards`: {e}"))?;
    let Value::Arr(rows) = shards else {
        return Err("`stats.metrics.shards` is not an array".to_string());
    };
    let mut sum_ns = 0.0;
    let mut count = 0.0;
    for row in rows {
        let hist = row
            .field("decide_ns")
            .map_err(|e| format!("bad shard `decide_ns`: {e}"))?;
        sum_ns += number(hist, "sum_ns").map_err(|e| format!("shard decide_ns: {e}"))?;
        count += number(hist, "count").map_err(|e| format!("shard decide_ns: {e}"))?;
    }
    Ok((sum_ns, count))
}

/// Gates a batched-decide run against a locked-decide run of the same
/// workload on **decide-phase CPU per decision**, not end-to-end
/// throughput: under a paced or backlogged workload the wire and the
/// commit queue dominate wall time, so throughput compares as noise
/// while the decide histograms cleanly isolate what the lock-free path
/// actually changes. The gate fails when:
///
/// * the workload configurations differ (same rule as [`check_full`]);
/// * either run is not `verified: true` — a fast decide that diverges
///   from the serial reference gates nothing;
/// * either report lacks per-shard `decide_ns` histograms, or recorded
///   zero decisions;
/// * the locked run's mean decide cost is less than `min_speedup` times
///   the batched run's — the seqlock fast path stopped paying for
///   itself.
///
/// # Errors
///
/// Returns `Err` when either report is structurally unusable, distinct
/// from a well-formed report that merely fails the gate.
pub fn check_decide_speedup(
    fresh: &Value,
    baseline: &Value,
    min_speedup: f64,
) -> Result<DecideSpeedupReport, String> {
    let mut failures = Vec::new();

    config_drift(fresh, baseline, &CONFIG_FIELDS, &mut failures);

    for (label, report) in [("fresh", fresh), ("baseline", baseline)] {
        match report.field("verified") {
            Ok(Value::Bool(true)) => {}
            Ok(Value::Bool(false)) => failures.push(format!(
                "{label} run failed verification: daemon admissions diverged from the serial \
                 reference"
            )),
            Ok(_) => failures.push(format!(
                "{label} run has no verification verdict: rerun with --verify"
            )),
            Err(e) => return Err(format!("{label}: bad `verified`: {e}")),
        }
    }

    let (fresh_sum, fresh_count) = decide_cost(fresh).map_err(|e| format!("fresh: {e}"))?;
    let (base_sum, base_count) = decide_cost(baseline).map_err(|e| format!("baseline: {e}"))?;
    if fresh_count <= 0.0 || base_count <= 0.0 {
        return Err("a report recorded zero decisions in its decide_ns histograms".to_string());
    }
    let fresh_decide_ns = fresh_sum / fresh_count;
    let baseline_decide_ns = base_sum / base_count;
    if fresh_decide_ns <= 0.0 {
        return Err(format!(
            "fresh mean decide cost is {fresh_decide_ns} ns; the decide histograms are empty"
        ));
    }
    let speedup = baseline_decide_ns / fresh_decide_ns;
    if speedup < min_speedup {
        failures.push(format!(
            "decide-phase regression: batched decide costs {fresh_decide_ns:.0} ns/decision vs \
             {baseline_decide_ns:.0} ns locked — {speedup:.2}x, below the {min_speedup:.2}x floor \
             (the lock-free fast path is no longer paying for itself)"
        ));
    }

    Ok(DecideSpeedupReport {
        fresh_decide_ns,
        baseline_decide_ns,
        speedup,
        min_speedup,
        failures,
    })
}

/// Outcome of gating a `--durable` fresh run against the non-durable
/// baseline.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DurableGateReport {
    /// Durable run's decision throughput (decisions/s).
    pub fresh_throughput: f64,
    /// Non-durable baseline's decision throughput (decisions/s).
    pub baseline_throughput: f64,
    /// `fresh_throughput / baseline_throughput` — the durability tax.
    pub ratio: f64,
    /// Minimum acceptable ratio.
    pub min_ratio: f64,
    /// Whether the restart-recovery check reproduced the daemon's final
    /// state.
    pub recovery_matches: bool,
    /// Journal records the restart check replayed.
    pub recovery_replayed_records: f64,
    /// Wall time of the restart (bind + recover + spawn), milliseconds.
    pub restart_recovery_ms: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl DurableGateReport {
    /// True when no gate condition failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates a `--durable` fresh run against the checked-in **non-durable**
/// baseline. The gate fails when:
///
/// * the workload configurations differ (same rule as [`check_full`]);
/// * the fresh run is not `verified: true` (serial-equivalence check,
///   with the restart-recovery verdict folded in by `bb-loadgen`);
/// * the report has no `durable` row — the run was not actually
///   durable, so it gates nothing;
/// * the row's `recovery_matches` is not `true` — a restart from the
///   data directory failed to reproduce the daemon's final state;
/// * throughput fell below `min_ratio` of the **non-durable** baseline
///   — group commit is supposed to amortize the fsyncs; if durability
///   costs more than the margin, the journal is on the hot path.
///
/// # Errors
///
/// Returns `Err` when either report is structurally unusable, distinct
/// from a well-formed report that merely fails the gate.
pub fn check_durable(
    fresh: &Value,
    baseline: &Value,
    min_ratio: f64,
) -> Result<DurableGateReport, String> {
    let mut failures = Vec::new();

    config_drift(fresh, baseline, &CONFIG_FIELDS, &mut failures);

    match fresh.field("verified") {
        Ok(Value::Bool(true)) => {}
        Ok(Value::Bool(false)) => failures.push(
            "fresh run failed verification: daemon admissions diverged from the serial reference \
             (or the restart-recovery check failed)"
                .to_string(),
        ),
        Ok(_) => {
            failures.push("fresh run has no verification verdict: rerun with --verify".to_string())
        }
        Err(e) => return Err(format!("fresh: bad `verified`: {e}")),
    }

    let mut recovery_matches = false;
    let mut recovery_replayed_records = 0.0;
    let mut restart_recovery_ms = 0.0;
    match fresh.field("durable") {
        Ok(Value::Null) | Err(_) => failures
            .push("fresh run has no `durable` row: rerun bb-loadgen with --durable".to_string()),
        Ok(row) => {
            match row.field("recovery_matches") {
                Ok(Value::Bool(true)) => recovery_matches = true,
                _ => failures.push(
                    "restart-recovery check failed: the state recovered from the data directory \
                     does not match the daemon's final state"
                        .to_string(),
                ),
            }
            recovery_replayed_records = number(row, "recovery_replayed_records").unwrap_or(0.0);
            restart_recovery_ms = number(row, "restart_recovery_ms").unwrap_or(0.0);
        }
    }

    let fresh_throughput =
        number(fresh, "throughput_decisions_per_s").map_err(|e| format!("fresh: {e}"))?;
    let baseline_throughput =
        number(baseline, "throughput_decisions_per_s").map_err(|e| format!("baseline: {e}"))?;
    if baseline_throughput <= 0.0 {
        return Err(format!(
            "baseline throughput is {baseline_throughput}; regenerate BENCH_loadgen.json"
        ));
    }
    let ratio = fresh_throughput / baseline_throughput;
    if ratio < min_ratio {
        failures.push(format!(
            "durability tax too high: {fresh_throughput:.0} decisions/s is {:.0}% of the \
             {baseline_throughput:.0} non-durable baseline (floor: {:.0}%)",
            ratio * 100.0,
            min_ratio * 100.0
        ));
    }

    Ok(DurableGateReport {
        fresh_throughput,
        baseline_throughput,
        ratio,
        min_ratio,
        recovery_matches,
        recovery_replayed_records,
        restart_recovery_ms,
        failures,
    })
}

/// Outcome of gating a `--domains` federation run against the
/// checked-in `BENCH_federation.json` baseline.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FederationGateReport {
    /// Fresh run's decision throughput across the chain (decisions/s).
    pub fresh_throughput: f64,
    /// Baseline's decision throughput (decisions/s).
    pub baseline_throughput: f64,
    /// `fresh_throughput / baseline_throughput`.
    pub ratio: f64,
    /// Minimum acceptable ratio.
    pub min_ratio: f64,
    /// Fresh run's cross-domain p99 setup latency (µs).
    pub fresh_p99_us: f64,
    /// Baseline's cross-domain p99 setup latency (µs).
    pub baseline_p99_us: f64,
    /// `fresh_p99_us / baseline_p99_us`.
    pub p99_ratio: f64,
    /// Maximum acceptable p99 ratio.
    pub max_p99_ratio: f64,
    /// Federation chain length the fresh run drove.
    pub domains: f64,
    /// Minimum acceptable chain length.
    pub min_domains: f64,
    /// Whether every downstream domain finished holding exactly the
    /// edge domain's resident flows (`None` when the run could not
    /// check — e.g. an externally hosted chain).
    pub residency_ok: Option<bool>,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl FederationGateReport {
    /// True when no gate condition failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates a `--domains` federation run against the checked-in
/// `BENCH_federation.json` baseline. Failures accumulate — every check
/// runs and every miss is reported with expected vs actual. The gate
/// fails when:
///
/// * the workload configurations differ, **including `domains`** (the
///   chain length is part of the workload);
/// * the fresh run drove fewer than `min_domains` domains — the gate
///   exists to exercise a real multi-hop chain, not a flat run that
///   happened to write the federation report name;
/// * the fresh run is not `verified: true` — cross-domain admissions
///   must match the flat union-topology broker flow-for-flow (the
///   zero-residue downstream check is folded into `verified` by
///   `bb-loadgen`);
/// * `federation_residency_ok` is reported and not `true` — some abort
///   path left a booking resident in a downstream domain;
/// * throughput fell below `min_ratio` of the baseline, or the
///   cross-domain p99 setup latency rose above `max_p99_ratio` times
///   the baseline's — each admission traverses the whole chain, so the
///   tail is where a peer-hop stall shows first.
///
/// The single-domain gate's path-cache floor is deliberately absent:
/// federated admissions take the exact-rate path, not the cached
/// summary path, so the hit rate measures nothing here.
///
/// # Errors
///
/// Returns `Err` only when a report is not a JSON object at all;
/// field-level problems are accumulated as failures.
pub fn check_federation(
    fresh: &Value,
    baseline: &Value,
    min_ratio: f64,
    max_p99_ratio: f64,
    min_domains: f64,
) -> Result<FederationGateReport, String> {
    let mut failures = Vec::new();

    let mut fields: Vec<&str> = CONFIG_FIELDS.to_vec();
    fields.push("domains");
    config_drift(fresh, baseline, &fields, &mut failures);

    let domains = gated_number(fresh, "fresh", "domains", &mut failures).unwrap_or(0.0);
    if domains < min_domains {
        failures.push(format!(
            "chain too short: expected >= {min_domains:.0} federated domains, actual {domains:.0} \
             (rerun bb-loadgen with --domains)"
        ));
    }

    match fresh.field("verified") {
        Ok(Value::Bool(true)) => {}
        Ok(Value::Bool(false)) => failures.push(
            "fresh run failed verification: expected verified=true, actual false (cross-domain \
             admissions diverged from the flat union-topology broker, or a booking leaked)"
                .to_string(),
        ),
        Ok(_) => {
            failures.push("fresh run has no verification verdict: rerun with --verify".to_string())
        }
        Err(e) => failures.push(format!("fresh: bad `verified`: {e}")),
    }

    let residency_ok = match fresh.field("federation_residency_ok") {
        Ok(Value::Bool(b)) => Some(*b),
        _ => None,
    };
    if residency_ok == Some(false) {
        failures.push(
            "zero-residue violation: expected every downstream domain to finish holding exactly \
             the edge domain's resident flows, actual federation_residency_ok=false"
                .to_string(),
        );
    }

    let fresh_throughput =
        gated_number(fresh, "fresh", "throughput_decisions_per_s", &mut failures).unwrap_or(0.0);
    let baseline_throughput = gated_number(
        baseline,
        "baseline",
        "throughput_decisions_per_s",
        &mut failures,
    )
    .unwrap_or(0.0);
    let ratio = if baseline_throughput > 0.0 {
        fresh_throughput / baseline_throughput
    } else {
        failures.push(format!(
            "baseline throughput is {baseline_throughput}; regenerate BENCH_federation.json"
        ));
        0.0
    };
    if baseline_throughput > 0.0 && ratio < min_ratio {
        failures.push(format!(
            "throughput regression: expected >= {:.0} decisions/s ({:.0}% of the \
             {baseline_throughput:.0} baseline), actual {fresh_throughput:.0} ({:.0}%)",
            baseline_throughput * min_ratio,
            min_ratio * 100.0,
            ratio * 100.0
        ));
    }

    let fresh_p99_us =
        gated_number(fresh, "fresh", "setup_latency_p99_us", &mut failures).unwrap_or(0.0);
    let baseline_p99_us =
        gated_number(baseline, "baseline", "setup_latency_p99_us", &mut failures).unwrap_or(0.0);
    let p99_ratio = if baseline_p99_us > 0.0 {
        fresh_p99_us / baseline_p99_us
    } else {
        failures.push(format!(
            "baseline p99 setup latency is {baseline_p99_us}; regenerate BENCH_federation.json"
        ));
        0.0
    };
    if baseline_p99_us > 0.0 && p99_ratio > max_p99_ratio {
        failures.push(format!(
            "latency regression: expected cross-domain p99 setup latency <= {:.0}µs ({:.0}% of \
             the {baseline_p99_us:.0}µs baseline), actual {fresh_p99_us:.0}µs ({:.0}%)",
            baseline_p99_us * max_p99_ratio,
            max_p99_ratio * 100.0,
            p99_ratio * 100.0
        ));
    }

    Ok(FederationGateReport {
        fresh_throughput,
        baseline_throughput,
        ratio,
        min_ratio,
        fresh_p99_us,
        baseline_p99_us,
        p99_ratio,
        max_p99_ratio,
        domains,
        min_domains,
        residency_ok,
        failures,
    })
}

/// Fraction of the durable baseline's throughput a replicated run must
/// hold: the semi-synchronous DEC gate is supposed to cost latency
/// inside the pacing slack, not decisions per second.
pub const DEFAULT_MIN_REPL_RATIO: f64 = 0.9;

/// Ceiling on the kill run's p99 failover time (kill → first decision
/// from the promoted standby), milliseconds. Promotion is a barrier
/// drain plus a bind; whole seconds mean the standby stalled.
pub const DEFAULT_MAX_FAILOVER_P99_MS: f64 = 5_000.0;

/// Outcome of gating a `bb-loadgen --failover` run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FailoverGateReport {
    /// Durable single-daemon throughput (decisions/s).
    pub durable_baseline_rps: f64,
    /// Throughput with the warm standby attached (decisions/s).
    pub replicated_rps: f64,
    /// `replicated_rps / durable_baseline_rps`.
    pub throughput_ratio: f64,
    /// Minimum acceptable ratio.
    pub min_ratio: f64,
    /// Kill → first standby decision, p50 (ms).
    pub failover_p50_ms: f64,
    /// Kill → first standby decision, p99 (ms).
    pub failover_p99_ms: f64,
    /// Maximum acceptable p99 (ms).
    pub max_p99_ms: f64,
    /// Acknowledged flows missing from the promoted standby.
    pub lost_admitted_flows: f64,
    /// Re-sent requests the standby refused as duplicates (admitted and
    /// replicated, DEC lost in the kill) — reported, never gated.
    pub ghost_duplicates: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl FailoverGateReport {
    /// True when no gate condition failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates a `bb-loadgen --failover` report. Self-contained — the run
/// measures its own durable baseline, so no second report is involved.
/// Failures accumulate; every miss states expected vs actual. The gate
/// fails when:
///
/// * `lost_admitted_flows` is missing or not zero — an admitted flow
///   the primary acknowledged did not survive onto the promoted
///   standby, which is exactly what the semi-synchronous DEC gate
///   exists to make impossible;
/// * the kill run answered fewer decisions than
///   `clients x requests_per_client` — requests were dropped across the
///   failover instead of re-delivered;
/// * `throughput_ratio` fell below `min_ratio` — gating every DEC on
///   the standby's ack started costing decisions per second, meaning
///   replication moved onto the critical path instead of overlapping
///   with the pacing slack;
/// * the failover percentiles are missing, non-positive, or the p99
///   rose above `max_p99_ms` — the kill was never crossed, or the
///   promotion stalled.
///
/// # Errors
///
/// Practically always returns `Ok`: structural problems are
/// accumulated into `failures` so one bad field cannot hide the rest.
pub fn check_failover(
    fresh: &Value,
    min_ratio: f64,
    max_p99_ms: f64,
) -> Result<FailoverGateReport, String> {
    let mut failures = Vec::new();

    let lost = gated_number(fresh, "fresh", "lost_admitted_flows", &mut failures);
    if let Some(lost) = lost {
        if lost > 0.0 {
            failures.push(format!(
                "admitted-flow loss: expected 0 acknowledged flows lost in the failover, \
                 actual {lost:.0} — the promoted standby is missing flows the primary \
                 acknowledged admitting"
            ));
        }
    }

    let decided = gated_number(fresh, "fresh", "decisions_failover", &mut failures).unwrap_or(0.0);
    let clients = gated_number(fresh, "fresh", "clients", &mut failures).unwrap_or(0.0);
    let per_client =
        gated_number(fresh, "fresh", "requests_per_client", &mut failures).unwrap_or(0.0);
    let offered = clients * per_client;
    if offered > 0.0 && decided < offered {
        failures.push(format!(
            "failover run dropped requests: expected {offered:.0} decisions across the kill, \
             actual {decided:.0}"
        ));
    }

    let durable_baseline_rps =
        gated_number(fresh, "fresh", "durable_baseline_rps", &mut failures).unwrap_or(0.0);
    let replicated_rps =
        gated_number(fresh, "fresh", "replicated_rps", &mut failures).unwrap_or(0.0);
    let throughput_ratio = if durable_baseline_rps > 0.0 {
        replicated_rps / durable_baseline_rps
    } else {
        failures.push(format!(
            "durable baseline throughput is {durable_baseline_rps}; rerun bb-loadgen --failover"
        ));
        0.0
    };
    if durable_baseline_rps > 0.0 && throughput_ratio < min_ratio {
        failures.push(format!(
            "replication tax too high: expected >= {:.0} decisions/s ({:.0}% of the \
             {durable_baseline_rps:.0} durable baseline), actual {replicated_rps:.0} ({:.0}%)",
            durable_baseline_rps * min_ratio,
            min_ratio * 100.0,
            throughput_ratio * 100.0
        ));
    }

    let failover_p50_ms =
        gated_number(fresh, "fresh", "failover_p50_ms", &mut failures).unwrap_or(0.0);
    let failover_p99_ms =
        gated_number(fresh, "fresh", "failover_p99_ms", &mut failures).unwrap_or(0.0);
    if failover_p50_ms <= 0.0 || failover_p99_ms <= 0.0 {
        failures.push(format!(
            "failover times are not positive (p50 {failover_p50_ms} ms, p99 {failover_p99_ms} \
             ms): no client crossed the kill"
        ));
    } else if failover_p99_ms > max_p99_ms {
        failures.push(format!(
            "failover too slow: expected p99 <= {max_p99_ms:.0} ms from SIGKILL to the first \
             decision off the promoted standby, actual {failover_p99_ms:.0} ms"
        ));
    }

    Ok(FailoverGateReport {
        durable_baseline_rps,
        replicated_rps,
        throughput_ratio,
        min_ratio,
        failover_p50_ms,
        failover_p99_ms,
        max_p99_ms,
        lost_admitted_flows: lost.unwrap_or(-1.0),
        ghost_duplicates: number(fresh, "ghost_duplicates").unwrap_or(0.0),
        failures,
    })
}

/// Configuration-identity fields of a `--scenario` report: two runs are
/// comparable only over the same tree shape, resident target, and seed.
const SCENARIO_CONFIG_FIELDS: [&str; 5] = [
    "sites",
    "aps_per_site",
    "clients_per_ap",
    "resident_target",
    "seed",
];

/// Fraction of the baseline's sustained ramp throughput a fresh
/// scenario run must reach (same generous margin as the loadgen gate:
/// shared runners are noisy, the gate hunts collapses).
pub const DEFAULT_MIN_SCENARIO_RATIO: f64 = 0.6;

/// Absolute ceiling on the daemon's RSS growth per resident flow,
/// bytes. The flow record, its WAL-free MIB bookings, and the id maps
/// cost on the order of a few hundred bytes per flow; a multi-KiB
/// figure means per-flow state started duplicating somewhere on the
/// admission path.
pub const DEFAULT_MAX_BYTES_PER_FLOW: f64 = 4_096.0;

/// Fetches a number at a nested `a.b` path, accumulating a failure (and
/// returning `None`) when any segment is missing or the leaf is not a
/// number — same contract as [`gated_number`], one level deeper.
fn gated_nested_number(
    report: &Value,
    label: &str,
    path: &[&str],
    failures: &mut Vec<String>,
) -> Option<f64> {
    let mut v = report;
    for (i, seg) in path.iter().enumerate() {
        match v.field(seg) {
            Ok(inner) => v = inner,
            Err(e) => {
                failures.push(format!("{label}: bad `{}`: {e}", path[..=i].join(".")));
                return None;
            }
        }
    }
    match v.as_f64() {
        Ok(n) => Some(n),
        Err(e) => {
            failures.push(format!("{label}: bad `{}`: {e}", path.join(".")));
            None
        }
    }
}

/// Outcome of gating a `bb-loadgen --scenario` run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScenarioGateReport {
    /// Flows the ramp admitted and held.
    pub resident_peak: f64,
    /// Flows the spec demanded resident.
    pub resident_target: f64,
    /// Fresh run's sustained ramp throughput (decisions/s).
    pub fresh_sustained_rps: f64,
    /// Baseline's sustained ramp throughput (decisions/s).
    pub baseline_sustained_rps: f64,
    /// `fresh_sustained_rps / baseline_sustained_rps`.
    pub ratio: f64,
    /// Minimum acceptable ratio.
    pub min_ratio: f64,
    /// Fresh run's RSS growth per resident flow (bytes).
    pub bytes_per_resident_flow: f64,
    /// Maximum acceptable bytes per resident flow (absolute).
    pub max_bytes_per_flow: f64,
    /// Trace events the replay phase drove.
    pub replay_events: f64,
    /// Human-readable reasons the gate failed; empty means pass.
    pub failures: Vec<String>,
}

impl ScenarioGateReport {
    /// True when no gate condition failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates a `bb-loadgen --scenario` report against the checked-in
/// scenario baseline. Failures accumulate; every miss states expected
/// vs actual. The gate fails when:
///
/// * the two reports disagree on any tree/target/seed config knob —
///   different trees or seeds are different experiments;
/// * `verified_sampled` is not `true` — a sampled resident flow was
///   lost, or a departed flow's state survived its teardown;
/// * `ramp.resident_peak` fell short of `resident_target` — the run's
///   whole point is *holding* that population;
/// * the sustained ramp throughput dropped below `min_ratio` of the
///   baseline's — admission slowed down under a resident population;
/// * `ramp.bytes_per_resident_flow` rose above `max_bytes_per_flow` —
///   the per-flow state envelope grew (absolute ceiling: memory
///   regressions must not hide behind a noisy baseline);
/// * the replay phase drove no events or no arrivals — the scenario
///   engine produced an empty trace, so churn/flash/failure coverage
///   silently vanished.
///
/// # Errors
///
/// Practically always returns `Ok`: structural problems are
/// accumulated into `failures` so one bad field cannot hide the rest.
pub fn check_scenario(
    fresh: &Value,
    baseline: &Value,
    min_ratio: f64,
    max_bytes_per_flow: f64,
) -> Result<ScenarioGateReport, String> {
    let mut failures = Vec::new();

    config_drift(fresh, baseline, &SCENARIO_CONFIG_FIELDS, &mut failures);

    match fresh.field("verified_sampled") {
        Ok(Value::Bool(true)) => {}
        Ok(Value::Bool(false)) => failures.push(
            "fresh run failed sampled verification: expected verified_sampled=true, actual \
             false (a sampled resident flow was lost, or a departed flow's state survived)"
                .to_string(),
        ),
        Ok(_) => failures.push(
            "fresh run has no `verified_sampled` verdict: rerun bb-loadgen --scenario".into(),
        ),
        Err(e) => failures.push(format!("fresh: bad `verified_sampled`: {e}")),
    }

    let resident_target =
        gated_number(fresh, "fresh", "resident_target", &mut failures).unwrap_or(0.0);
    let resident_peak =
        gated_nested_number(fresh, "fresh", &["ramp", "resident_peak"], &mut failures)
            .unwrap_or(0.0);
    if resident_peak < resident_target {
        failures.push(format!(
            "resident population fell short: expected >= {resident_target:.0} flows admitted \
             and held through the ramp, actual {resident_peak:.0}"
        ));
    }

    let fresh_sustained_rps = gated_nested_number(
        fresh,
        "fresh",
        &["ramp", "sustained_decisions_per_s"],
        &mut failures,
    )
    .unwrap_or(0.0);
    let baseline_sustained_rps = gated_nested_number(
        baseline,
        "baseline",
        &["ramp", "sustained_decisions_per_s"],
        &mut failures,
    )
    .unwrap_or(0.0);
    let ratio = if baseline_sustained_rps > 0.0 {
        fresh_sustained_rps / baseline_sustained_rps
    } else {
        failures.push(format!(
            "baseline sustained throughput is {baseline_sustained_rps}; regenerate the \
             scenario baseline"
        ));
        0.0
    };
    if baseline_sustained_rps > 0.0 && ratio < min_ratio {
        failures.push(format!(
            "sustained-throughput regression: expected >= {:.0} decisions/s ({:.0}% of the \
             {baseline_sustained_rps:.0} baseline), actual {fresh_sustained_rps:.0} ({:.0}%)",
            baseline_sustained_rps * min_ratio,
            min_ratio * 100.0,
            ratio * 100.0
        ));
    }

    let bytes_per_resident_flow = gated_nested_number(
        fresh,
        "fresh",
        &["ramp", "bytes_per_resident_flow"],
        &mut failures,
    )
    .unwrap_or(0.0);
    if bytes_per_resident_flow > max_bytes_per_flow {
        failures.push(format!(
            "memory envelope regression: expected <= {max_bytes_per_flow:.0} B of RSS growth \
             per resident flow, actual {bytes_per_resident_flow:.0} B"
        ));
    }

    let replay_events =
        gated_nested_number(fresh, "fresh", &["replay", "events"], &mut failures).unwrap_or(0.0);
    let replay_arrivals =
        gated_nested_number(fresh, "fresh", &["replay", "arrivals"], &mut failures).unwrap_or(0.0);
    if replay_events <= 0.0 || replay_arrivals <= 0.0 {
        failures.push(format!(
            "empty replay: expected a populated event trace, actual {replay_events:.0} events \
             / {replay_arrivals:.0} arrivals"
        ));
    }

    Ok(ScenarioGateReport {
        resident_peak,
        resident_target,
        fresh_sustained_rps,
        baseline_sustained_rps,
        ratio,
        min_ratio,
        bytes_per_resident_flow,
        max_bytes_per_flow,
        replay_events,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_hit_rate(
        throughput: f64,
        verified: &str,
        seed: u64,
        p99_us: f64,
        hit_rate: &str,
    ) -> Value {
        serde::json::parse(&format!(
            r#"{{
              "pods": 64, "hops": 5, "clients": 8, "requests_per_client": 2000,
              "offered_rate_per_client_hz": 8000.0, "seed": {seed},
              "throughput_decisions_per_s": {throughput},
              "setup_latency_p99_us": {p99_us},
              "path_cache_hit_rate": {hit_rate},
              "verified": {verified}
            }}"#
        ))
        .expect("literal parses")
    }

    fn report_with_p99(throughput: f64, verified: &str, seed: u64, p99_us: f64) -> Value {
        report_with_hit_rate(throughput, verified, seed, p99_us, "0.7")
    }

    fn report(throughput: f64, verified: &str, seed: u64) -> Value {
        report_with_p99(throughput, verified, seed, 3_500.0)
    }

    #[test]
    fn passes_when_verified_and_fast_enough() {
        let verdict = check(
            &report(30_000.0, "true", 1),
            &report(34_000.0, "true", 1),
            DEFAULT_MIN_RATIO,
        )
        .unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
        assert!((verdict.ratio - 30.0 / 34.0).abs() < 1e-9);
    }

    #[test]
    fn fails_on_throughput_collapse() {
        let verdict = check(
            &report(10_000.0, "true", 1),
            &report(34_000.0, "true", 1),
            DEFAULT_MIN_RATIO,
        )
        .unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("throughput regression"));
    }

    #[test]
    fn fails_on_p99_latency_blowup_even_when_throughput_holds() {
        let verdict = check(
            &report_with_p99(34_000.0, "true", 1, 6_000.0),
            &report_with_p99(34_000.0, "true", 1, 3_500.0),
            DEFAULT_MIN_RATIO,
        )
        .unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("latency regression"));
        assert!((verdict.p99_ratio - 6_000.0 / 3_500.0).abs() < 1e-9);

        // Exactly at the ceiling still passes: the gate is `>`, not `>=`.
        let at_ceiling = check_with_latency(
            &report_with_p99(34_000.0, "true", 1, 5_250.0),
            &report_with_p99(34_000.0, "true", 1, 3_500.0),
            DEFAULT_MIN_RATIO,
            DEFAULT_MAX_P99_RATIO,
        )
        .unwrap();
        assert!(at_ceiling.passed(), "{:?}", at_ceiling.failures);
    }

    #[test]
    fn fails_on_unverified_or_missing_verdict() {
        let base = report(34_000.0, "true", 1);
        let failed = check(&report(34_000.0, "false", 1), &base, DEFAULT_MIN_RATIO).unwrap();
        assert!(failed
            .failures
            .iter()
            .any(|f| f.contains("failed verification")));
        let skipped = check(&report(34_000.0, "null", 1), &base, DEFAULT_MIN_RATIO).unwrap();
        assert!(skipped.failures.iter().any(|f| f.contains("--verify")));
    }

    #[test]
    fn fails_on_config_drift_even_when_fast() {
        let verdict = check(
            &report(40_000.0, "true", 2),
            &report(34_000.0, "true", 1),
            DEFAULT_MIN_RATIO,
        )
        .unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("config drift on `seed`"));
    }

    #[test]
    fn fails_when_the_path_cache_collapses_or_goes_unreported() {
        let base = report(34_000.0, "true", 1);
        let cold = check(
            &report_with_hit_rate(34_000.0, "true", 1, 3_500.0, "0.1"),
            &base,
            DEFAULT_MIN_RATIO,
        )
        .unwrap();
        assert!(!cold.passed());
        assert!(cold.failures[0].contains("path-cache collapse"));
        assert_eq!(cold.fresh_hit_rate, Some(0.1));

        let unreported = check(
            &report_with_hit_rate(34_000.0, "true", 1, 3_500.0, "null"),
            &base,
            DEFAULT_MIN_RATIO,
        )
        .unwrap();
        assert!(!unreported.passed());
        assert!(unreported.failures[0].contains("path_cache_hit_rate"));

        // Exactly at the floor passes: the gate is `<`, not `<=`.
        let at_floor = check_full(
            &report_with_hit_rate(34_000.0, "true", 1, 3_500.0, "0.5"),
            &base,
            DEFAULT_MIN_RATIO,
            DEFAULT_MAX_P99_RATIO,
            DEFAULT_MIN_HIT_RATE,
        )
        .unwrap();
        assert!(at_floor.passed(), "{:?}", at_floor.failures);
    }

    fn report_with_allocs(throughput: f64, allocs: &str) -> Value {
        serde::json::parse(&format!(
            r#"{{
              "pods": 64, "hops": 5, "clients": 8, "requests_per_client": 2000,
              "offered_rate_per_client_hz": 8000.0, "seed": 1,
              "throughput_decisions_per_s": {throughput},
              "setup_latency_p99_us": 3500.0,
              "path_cache_hit_rate": 0.7,
              "allocs_per_decision": {allocs},
              "verified": true
            }}"#
        ))
        .expect("literal parses")
    }

    #[test]
    fn allocs_ceiling_gates_only_when_requested() {
        let base = report(34_000.0, "true", 1);

        // Above the ceiling fails; exactly at it passes (strict `>`).
        let bloated = check_full_with_allocs(
            &report_with_allocs(34_000.0, "80.2"),
            &base,
            DEFAULT_MIN_RATIO,
            DEFAULT_MAX_P99_RATIO,
            DEFAULT_MIN_HIT_RATE,
            Some(40.0),
        )
        .unwrap();
        assert!(!bloated.passed());
        assert!(bloated.failures[0].contains("allocation regression"));
        assert_eq!(bloated.fresh_allocs_per_decision, Some(80.2));

        let at_ceiling = check_full_with_allocs(
            &report_with_allocs(34_000.0, "40.0"),
            &base,
            DEFAULT_MIN_RATIO,
            DEFAULT_MAX_P99_RATIO,
            DEFAULT_MIN_HIT_RATE,
            Some(40.0),
        )
        .unwrap();
        assert!(at_ceiling.passed(), "{:?}", at_ceiling.failures);

        // The ceiling demands a count-allocs build: a null field fails
        // when the ceiling is given...
        let uncounted = check_full_with_allocs(
            &report_with_allocs(34_000.0, "null"),
            &base,
            DEFAULT_MIN_RATIO,
            DEFAULT_MAX_P99_RATIO,
            DEFAULT_MIN_HIT_RATE,
            Some(40.0),
        )
        .unwrap();
        assert!(!uncounted.passed());
        assert!(uncounted.failures[0].contains("count-allocs"));

        // ...and is ignored entirely when it is not.
        let ungated = check_full(
            &report_with_allocs(34_000.0, "null"),
            &base,
            DEFAULT_MIN_RATIO,
            DEFAULT_MAX_P99_RATIO,
            DEFAULT_MIN_HIT_RATE,
        )
        .unwrap();
        assert!(ungated.passed(), "{:?}", ungated.failures);
        assert_eq!(ungated.max_allocs_per_decision, None);
    }

    #[test]
    fn every_failed_check_is_reported_in_one_pass() {
        // The regression this guards: a structurally broken field used
        // to abort the gate with a single bare message, hiding every
        // other finding. Now one pass reports them all — the missing
        // fields AND the drift on the field that is present.
        let fresh = serde::json::parse(r#"{"pods": 32}"#).unwrap();
        let base = report(34_000.0, "true", 1);
        let verdict = check(&fresh, &base, DEFAULT_MIN_RATIO).unwrap();
        assert!(!verdict.passed());
        assert!(verdict
            .failures
            .iter()
            .any(|f| f.contains("config drift on `pods`")
                && f.contains("expected 64")
                && f.contains("actual 32")));
        for missing in ["hops", "throughput_decisions_per_s", "setup_latency_p99_us"] {
            assert!(
                verdict.failures.iter().any(|f| f.contains(missing)),
                "no failure mentions `{missing}`: {:?}",
                verdict.failures
            );
        }
    }

    #[test]
    fn multiple_regressions_surface_together() {
        // Slow AND tail-heavy AND cache-cold: all three must be in the
        // verdict, each stating expected vs actual.
        let fresh = report_with_hit_rate(10_000.0, "true", 1, 9_000.0, "0.1");
        let base = report(34_000.0, "true", 1);
        let verdict = check(&fresh, &base, DEFAULT_MIN_RATIO).unwrap();
        assert_eq!(verdict.failures.len(), 3, "{:?}", verdict.failures);
        assert!(verdict.failures[0].contains("throughput regression"));
        assert!(verdict.failures[0].contains("expected >="));
        assert!(verdict.failures[1].contains("latency regression"));
        assert!(verdict.failures[2].contains("path-cache collapse"));
    }

    fn swarm_report(throughput: f64, connections: &str, open_peak: &str) -> Value {
        serde::json::parse(&format!(
            r#"{{
              "pods": 64, "hops": 5, "clients": 8, "requests_per_client": 2000,
              "offered_rate_per_client_hz": 8000.0, "seed": 1,
              "concurrent_connections": {connections},
              "throughput_decisions_per_s": {throughput},
              "setup_latency_p99_us": 4000.0,
              "verified": null,
              "stats": {{ "metrics": {{ "conns": {{ "open_peak": {open_peak} }} }} }}
            }}"#
        ))
        .expect("literal parses")
    }

    #[test]
    fn swarm_gate_passes_at_the_connection_floor_and_margin() {
        let fresh = swarm_report(33_000.0, "10000", "10000");
        let base = report(34_000.0, "true", 1);
        let verdict = check_swarm(&fresh, &base, DEFAULT_MIN_RATIO, 10_000.0).unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
        assert_eq!(verdict.daemon_open_peak, Some(10_000.0));
    }

    #[test]
    fn swarm_gate_fails_below_the_floor_slow_or_not_a_swarm_run() {
        let base = report(34_000.0, "true", 1);

        let few = swarm_report(33_000.0, "4000", "4000");
        let verdict = check_swarm(&few, &base, DEFAULT_MIN_RATIO, 10_000.0).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("connection floor"));

        // The generator's claim alone is not enough: the daemon must
        // have seen the connections concurrently open.
        let shallow_peak = swarm_report(33_000.0, "10000", "512");
        let verdict = check_swarm(&shallow_peak, &base, DEFAULT_MIN_RATIO, 10_000.0).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("daemon observed only"));

        let slow = swarm_report(10_000.0, "10000", "10000");
        let verdict = check_swarm(&slow, &base, DEFAULT_MIN_RATIO, 10_000.0).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("throughput regression under fan-in"));

        let classic = report(34_000.0, "true", 1);
        let verdict = check_swarm(&classic, &base, DEFAULT_MIN_RATIO, 10_000.0).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("--connections"));
    }

    fn decide_report(verified: &str, shard_sums_ns: &[u64], per_shard_count: u64) -> Value {
        let shards: Vec<String> = shard_sums_ns
            .iter()
            .map(|sum| {
                format!(r#"{{ "decide_ns": {{ "count": {per_shard_count}, "sum_ns": {sum} }} }}"#)
            })
            .collect();
        serde::json::parse(&format!(
            r#"{{
              "pods": 64, "hops": 5, "clients": 8, "requests_per_client": 2000,
              "offered_rate_per_client_hz": 8000.0, "seed": 1,
              "throughput_decisions_per_s": 60000.0,
              "setup_latency_p99_us": 4000.0,
              "verified": {verified},
              "stats": {{ "metrics": {{ "shards": [{}] }} }}
            }}"#,
            shards.join(",")
        ))
        .expect("literal parses")
    }

    #[test]
    fn decide_speedup_gate_compares_mean_decide_cost() {
        // Locked: 400 ns/decision over 2 shards; batched: 200 ns.
        let locked = decide_report("true", &[4_000_000, 4_000_000], 10_000);
        let batched = decide_report("true", &[2_000_000, 2_000_000], 10_000);
        let verdict = check_decide_speedup(&batched, &locked, 1.15).unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
        assert!((verdict.speedup - 2.0).abs() < 1e-9);
        assert!((verdict.fresh_decide_ns - 200.0).abs() < 1e-9);

        // Exactly at the floor passes: the gate is `<`, not `<=`.
        let at_floor = decide_report("true", &[4_000_000, 4_000_000], 11_500);
        let verdict = check_decide_speedup(&at_floor, &locked, 1.15).unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
    }

    #[test]
    fn decide_speedup_gate_fails_when_the_fast_path_stops_paying() {
        let locked = decide_report("true", &[4_000_000], 10_000);
        let slow = decide_report("true", &[3_900_000], 10_000);
        let verdict = check_decide_speedup(&slow, &locked, 1.15).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("decide-phase regression"));
    }

    #[test]
    fn decide_speedup_gate_requires_verification_and_histograms() {
        let locked = decide_report("true", &[4_000_000], 10_000);

        let unverified = decide_report("false", &[2_000_000], 10_000);
        let verdict = check_decide_speedup(&unverified, &locked, 1.15).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("failed verification"));

        let histogramless = report(60_000.0, "true", 1);
        assert!(check_decide_speedup(&histogramless, &locked, 1.15).is_err());
    }

    fn durable_report(throughput: f64, verified: &str, durable: &str) -> Value {
        serde::json::parse(&format!(
            r#"{{
              "pods": 64, "hops": 5, "clients": 8, "requests_per_client": 2000,
              "offered_rate_per_client_hz": 8000.0, "seed": 1,
              "throughput_decisions_per_s": {throughput},
              "setup_latency_p99_us": 4000.0,
              "path_cache_hit_rate": 0.7,
              "verified": {verified},
              "durable": {durable}
            }}"#
        ))
        .expect("literal parses")
    }

    const DURABLE_ROW: &str = r#"{
        "wal_flush_ms": 5, "snapshot_every": 10000,
        "fsync_count": 40, "snapshot_bytes": 120000,
        "restart_recovery_ms": 55.0,
        "recovery_replayed_records": 123,
        "recovered_resident_flows": 960,
        "recovery_matches": true
    }"#;

    #[test]
    fn durable_gate_passes_within_the_throughput_margin() {
        let fresh = durable_report(25_000.0, "true", DURABLE_ROW);
        let base = report(34_000.0, "true", 1);
        let verdict = check_durable(&fresh, &base, DEFAULT_MIN_RATIO).unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
        assert!(verdict.recovery_matches);
        assert!((verdict.recovery_replayed_records - 123.0).abs() < 1e-9);
        assert!((verdict.ratio - 25.0 / 34.0).abs() < 1e-9);
    }

    #[test]
    fn durable_gate_fails_on_heavy_tax_missing_row_or_recovery_mismatch() {
        let base = report(34_000.0, "true", 1);

        let slow = durable_report(10_000.0, "true", DURABLE_ROW);
        let verdict = check_durable(&slow, &base, DEFAULT_MIN_RATIO).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("durability tax"));

        let rowless = report(30_000.0, "true", 1);
        let verdict = check_durable(&rowless, &base, DEFAULT_MIN_RATIO).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("--durable"));

        let mismatched_row =
            DURABLE_ROW.replace("\"recovery_matches\": true", "\"recovery_matches\": false");
        let mismatch = durable_report(30_000.0, "false", &mismatched_row);
        let verdict = check_durable(&mismatch, &base, DEFAULT_MIN_RATIO).unwrap();
        assert!(!verdict.passed());
        assert!(!verdict.recovery_matches);
        assert!(verdict
            .failures
            .iter()
            .any(|f| f.contains("restart-recovery check failed")));
    }

    fn federation_report(
        throughput: f64,
        p99_us: f64,
        domains: u64,
        verified: &str,
        residency: &str,
    ) -> Value {
        serde::json::parse(&format!(
            r#"{{
              "pods": 8, "hops": 5, "clients": 4, "requests_per_client": 200,
              "offered_rate_per_client_hz": 2000.0, "seed": 1, "domains": {domains},
              "throughput_decisions_per_s": {throughput},
              "setup_latency_p99_us": {p99_us},
              "verified": {verified},
              "federation_residency_ok": {residency}
            }}"#
        ))
        .expect("literal parses")
    }

    #[test]
    fn federation_gate_passes_a_clean_chain_run() {
        let fresh = federation_report(7_000.0, 1_100.0, 3, "true", "true");
        let base = federation_report(7_400.0, 1_000.0, 3, "true", "true");
        let verdict =
            check_federation(&fresh, &base, DEFAULT_MIN_RATIO, DEFAULT_MAX_P99_RATIO, 3.0).unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
        assert_eq!(verdict.domains, 3.0);
        assert_eq!(verdict.residency_ok, Some(true));
    }

    #[test]
    fn federation_gate_fails_on_short_chain_residue_or_divergence() {
        let base = federation_report(7_400.0, 1_000.0, 3, "true", "true");

        // A flat run that wrote the federation report name: the chain
        // length drifts AND misses the floor — both reported.
        let flat = federation_report(7_400.0, 1_000.0, 1, "true", "null");
        let verdict =
            check_federation(&flat, &base, DEFAULT_MIN_RATIO, DEFAULT_MAX_P99_RATIO, 3.0).unwrap();
        assert!(!verdict.passed());
        assert!(verdict
            .failures
            .iter()
            .any(|f| f.contains("config drift on `domains`")));
        assert!(verdict
            .failures
            .iter()
            .any(|f| f.contains("chain too short")));

        let leaked = federation_report(7_400.0, 1_000.0, 3, "false", "false");
        let verdict = check_federation(
            &leaked,
            &base,
            DEFAULT_MIN_RATIO,
            DEFAULT_MAX_P99_RATIO,
            3.0,
        )
        .unwrap();
        assert!(!verdict.passed());
        assert!(verdict
            .failures
            .iter()
            .any(|f| f.contains("zero-residue violation")));
        assert!(verdict
            .failures
            .iter()
            .any(|f| f.contains("failed verification")));
        assert_eq!(verdict.residency_ok, Some(false));
    }

    fn failover_report(
        baseline_rps: f64,
        replicated_rps: f64,
        decided: u64,
        lost: &str,
        p99_ms: f64,
    ) -> Value {
        serde::json::parse(&format!(
            r#"{{
              "pods": 16, "hops": 3, "clients": 4, "requests_per_client": 400,
              "offered_rate_per_client_hz": 2000.0, "seed": 1,
              "durable_baseline_rps": {baseline_rps},
              "replicated_rps": {replicated_rps},
              "throughput_ratio": {},
              "decisions_failover": {decided},
              "admitted_by_primary": 810, "admitted_by_standby": 677,
              "ghost_duplicates": 1,
              "lost_admitted_flows": {lost},
              "failover_p50_ms": 14.0, "failover_p99_ms": {p99_ms}
            }}"#,
            replicated_rps / baseline_rps
        ))
        .expect("literal parses")
    }

    #[test]
    fn failover_gate_passes_a_clean_zero_loss_run() {
        let fresh = failover_report(7_600.0, 7_500.0, 1_600, "0", 20.0);
        let verdict =
            check_failover(&fresh, DEFAULT_MIN_REPL_RATIO, DEFAULT_MAX_FAILOVER_P99_MS).unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
        assert!((verdict.throughput_ratio - 7_500.0 / 7_600.0).abs() < 1e-9);
        assert_eq!(verdict.lost_admitted_flows, 0.0);
        assert_eq!(verdict.ghost_duplicates, 1.0);
    }

    #[test]
    fn failover_gate_fails_on_any_lost_admitted_flow() {
        // The one number the whole architecture exists to keep at zero.
        let fresh = failover_report(7_600.0, 7_500.0, 1_600, "3", 20.0);
        let verdict =
            check_failover(&fresh, DEFAULT_MIN_REPL_RATIO, DEFAULT_MAX_FAILOVER_P99_MS).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("admitted-flow loss"));
        assert!(verdict.failures[0].contains("actual 3"));

        // A report with no loss count at all must not pass either.
        let unsaid = failover_report(7_600.0, 7_500.0, 1_600, "null", 20.0);
        let verdict =
            check_failover(&unsaid, DEFAULT_MIN_REPL_RATIO, DEFAULT_MAX_FAILOVER_P99_MS).unwrap();
        assert!(!verdict.passed());
        assert!(verdict
            .failures
            .iter()
            .any(|f| f.contains("lost_admitted_flows")));
    }

    #[test]
    fn failover_gate_bounds_replication_tax_drops_and_promotion_stall() {
        // Taxed AND droppy AND slow to promote: all three in one pass.
        let fresh = failover_report(10_000.0, 5_000.0, 1_200, "0", 9_000.0);
        let verdict =
            check_failover(&fresh, DEFAULT_MIN_REPL_RATIO, DEFAULT_MAX_FAILOVER_P99_MS).unwrap();
        assert_eq!(verdict.failures.len(), 3, "{:?}", verdict.failures);
        assert!(verdict.failures[0].contains("dropped requests"));
        assert!(verdict.failures[1].contains("replication tax"));
        assert!(verdict.failures[2].contains("failover too slow"));

        // Exactly at the floor and ceiling still passes.
        let edge = failover_report(10_000.0, 9_000.0, 1_600, "0", 5_000.0);
        let verdict =
            check_failover(&edge, DEFAULT_MIN_REPL_RATIO, DEFAULT_MAX_FAILOVER_P99_MS).unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
    }

    #[test]
    fn federation_gate_bounds_throughput_and_cross_domain_tail_together() {
        let base = federation_report(7_400.0, 1_000.0, 3, "true", "true");
        let slow_and_heavy = federation_report(2_000.0, 5_000.0, 3, "true", "true");
        let verdict = check_federation(
            &slow_and_heavy,
            &base,
            DEFAULT_MIN_RATIO,
            DEFAULT_MAX_P99_RATIO,
            3.0,
        )
        .unwrap();
        assert_eq!(verdict.failures.len(), 2, "{:?}", verdict.failures);
        assert!(verdict.failures[0].contains("throughput regression"));
        assert!(verdict.failures[1].contains("latency regression"));
    }

    fn scenario_report(
        resident_peak: u64,
        sustained_rps: f64,
        bytes_per_flow: f64,
        verified: &str,
        seed: u64,
    ) -> Value {
        serde::json::parse(&scenario_report_text(
            resident_peak,
            sustained_rps,
            bytes_per_flow,
            verified,
            seed,
        ))
        .unwrap()
    }

    fn scenario_report_text(
        resident_peak: u64,
        sustained_rps: f64,
        bytes_per_flow: f64,
        verified: &str,
        seed: u64,
    ) -> String {
        format!(
            r#"{{
              "scenario": "smoke", "seed": {seed},
              "sites": 4, "aps_per_site": 8, "clients_per_ap": 32,
              "clients": 1024, "resident_target": 20000,
              "time_scale": 60.0, "workers": 4,
              "ramp": {{
                "resident_peak": {resident_peak}, "ramp_rejected": 0,
                "elapsed_s": 2.0, "sustained_decisions_per_s": {sustained_rps},
                "rss_before_bytes": 10000000, "rss_after_bytes": 30000000,
                "bytes_per_resident_flow": {bytes_per_flow}
              }},
              "replay": {{
                "events": 2200, "arrivals": 1100, "class_arrivals": 300,
                "flash_arrivals": 200, "admitted": 1050, "rejected": 50,
                "rerouted": 40, "departures": 1100, "link_downs": 1,
                "link_ups": 1, "elapsed_s": 1.0,
                "contingency_grants": 120, "contingency_expiries": 60,
                "contingency_resets": 0
              }},
              "probe": {{
                "probed_resident": 1024, "probed_departed": 512,
                "verified_sampled": {verified}
              }},
              "verified_sampled": {verified}
            }}"#
        )
    }

    #[test]
    fn scenario_gate_passes_a_clean_run() {
        let base = scenario_report(20_000, 10_000.0, 900.0, "true", 1);
        let fresh = scenario_report(20_000, 9_000.0, 950.0, "true", 1);
        let verdict = check_scenario(
            &fresh,
            &base,
            DEFAULT_MIN_SCENARIO_RATIO,
            DEFAULT_MAX_BYTES_PER_FLOW,
        )
        .unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
        assert_eq!(verdict.resident_peak, 20_000.0);
        assert!((verdict.ratio - 0.9).abs() < 1e-9);
    }

    #[test]
    fn scenario_gate_fails_unverified_or_short_populations() {
        let base = scenario_report(20_000, 10_000.0, 900.0, "true", 1);
        // A lost sampled flow is a verification failure...
        let lost = scenario_report(20_000, 10_000.0, 900.0, "false", 1);
        let verdict = check_scenario(
            &lost,
            &base,
            DEFAULT_MIN_SCENARIO_RATIO,
            DEFAULT_MAX_BYTES_PER_FLOW,
        )
        .unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("verified_sampled"));

        // ...and so is a ramp that never reached the resident target.
        let short = scenario_report(19_000, 10_000.0, 900.0, "true", 1);
        let verdict = check_scenario(
            &short,
            &base,
            DEFAULT_MIN_SCENARIO_RATIO,
            DEFAULT_MAX_BYTES_PER_FLOW,
        )
        .unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("resident population fell short"));
        assert!(verdict.failures[0].contains("actual 19000"));
    }

    #[test]
    fn scenario_gate_bounds_throughput_and_memory_together() {
        let base = scenario_report(20_000, 10_000.0, 900.0, "true", 1);
        let slow_and_fat = scenario_report(20_000, 4_000.0, 9_000.0, "true", 1);
        let verdict = check_scenario(
            &slow_and_fat,
            &base,
            DEFAULT_MIN_SCENARIO_RATIO,
            DEFAULT_MAX_BYTES_PER_FLOW,
        )
        .unwrap();
        assert_eq!(verdict.failures.len(), 2, "{:?}", verdict.failures);
        assert!(verdict.failures[0].contains("sustained-throughput regression"));
        assert!(verdict.failures[1].contains("memory envelope regression"));

        // Exactly at the floor and the ceiling still passes.
        let edge = scenario_report(20_000, 6_000.0, 4_096.0, "true", 1);
        let verdict = check_scenario(
            &edge,
            &base,
            DEFAULT_MIN_SCENARIO_RATIO,
            DEFAULT_MAX_BYTES_PER_FLOW,
        )
        .unwrap();
        assert!(verdict.passed(), "{:?}", verdict.failures);
    }

    #[test]
    fn scenario_gate_rejects_config_drift_and_empty_replays() {
        let base = scenario_report(20_000, 10_000.0, 900.0, "true", 1);
        let reseeded = scenario_report(20_000, 10_000.0, 900.0, "true", 2);
        let verdict = check_scenario(
            &reseeded,
            &base,
            DEFAULT_MIN_SCENARIO_RATIO,
            DEFAULT_MAX_BYTES_PER_FLOW,
        )
        .unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures[0].contains("config drift on `seed`"));

        let hollow_text = scenario_report_text(20_000, 10_000.0, 900.0, "true", 1)
            .replace("\"events\": 2200", "\"events\": 0")
            .replace("\"arrivals\": 1100", "\"arrivals\": 0");
        let hollow = serde::json::parse(&hollow_text).unwrap();
        let verdict = check_scenario(
            &hollow,
            &base,
            DEFAULT_MIN_SCENARIO_RATIO,
            DEFAULT_MAX_BYTES_PER_FLOW,
        )
        .unwrap();
        assert!(!verdict.passed());
        assert!(verdict.failures.iter().any(|f| f.contains("empty replay")));
    }
}
