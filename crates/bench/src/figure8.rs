//! The simulation topology of Figure 8.
//!
//! Sources S1/S2 feed ingresses I1/I2; the shared core is
//! R2 → R3 → R4 → R5 with egresses E1 (for D1) and E2 (for D2). All core
//! links run at 1.5 Mb/s with zero propagation delay; access links are
//! modeled as infinite (they never queue, so they are simply omitted from
//! the QoS paths, matching the paper's "capacity … assumed to be
//! infinity").
//!
//! Two scheduler settings (§5):
//!
//! * **rate-based only** — every link runs C̄SVC;
//! * **mixed** — C̄SVC on I1→R2, I2→R2, R2→R3, R5→E1 and VT-EDF on
//!   R3→R4, R4→R5, R5→E2.

use netsim::topology::{LinkId, SchedulerSpec, Topology, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate};

/// Which §5 scheduler setting to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// All links C̄SVC.
    RateOnly,
    /// The paper's CsVC/VT-EDF mix.
    Mixed,
}

impl Setting {
    /// Display label matching the paper's column headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Setting::RateOnly => "Rate-Based Only",
            Setting::Mixed => "Mixed Rate/Delay-Based",
        }
    }
}

/// The built topology plus the two QoS routes.
#[derive(Debug, Clone)]
pub struct Figure8 {
    /// The topology.
    pub topo: Topology,
    /// Route for S1 → D1 traffic: I1 → R2 → R3 → R4 → R5 → E1.
    pub path1: Vec<LinkId>,
    /// Route for S2 → D2 traffic: I2 → R2 → R3 → R4 → R5 → E2.
    pub path2: Vec<LinkId>,
}

/// Core link capacity: 1.5 Mb/s.
#[must_use]
pub fn core_capacity() -> Rate {
    Rate::from_bps(1_500_000)
}

/// Builds the Figure-8 topology in the given setting.
#[must_use]
pub fn build(setting: Setting) -> Figure8 {
    let mut b = TopologyBuilder::new();
    let i1 = b.node("I1");
    let i2 = b.node("I2");
    let r2 = b.node("R2");
    let r3 = b.node("R3");
    let r4 = b.node("R4");
    let r5 = b.node("R5");
    let e1 = b.node("E1");
    let e2 = b.node("E2");
    let cap = core_capacity();
    let lmax = Bits::from_bytes(1500);
    let cs = SchedulerSpec::CsVc;
    let ed = match setting {
        Setting::RateOnly => SchedulerSpec::CsVc,
        Setting::Mixed => SchedulerSpec::VtEdf,
    };
    let l_i1r2 = b.link(i1, r2, cap, Nanos::ZERO, cs, lmax);
    let l_i2r2 = b.link(i2, r2, cap, Nanos::ZERO, cs, lmax);
    let l_r2r3 = b.link(r2, r3, cap, Nanos::ZERO, cs, lmax);
    let l_r3r4 = b.link(r3, r4, cap, Nanos::ZERO, ed, lmax);
    let l_r4r5 = b.link(r4, r5, cap, Nanos::ZERO, ed, lmax);
    let l_r5e1 = b.link(r5, e1, cap, Nanos::ZERO, cs, lmax);
    let l_r5e2 = b.link(r5, e2, cap, Nanos::ZERO, ed, lmax);
    Figure8 {
        topo: b.build(),
        path1: vec![l_i1r2, l_r2r3, l_r3r4, l_r4r5, l_r5e1],
        path2: vec![l_i2r2, l_r2r3, l_r3r4, l_r4r5, l_r5e2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_have_expected_hop_mix() {
        let f = build(Setting::RateOnly);
        let spec = f.topo.path_spec(&f.path1);
        assert_eq!((spec.h(), spec.q()), (5, 5));

        let f = build(Setting::Mixed);
        let spec1 = f.topo.path_spec(&f.path1);
        assert_eq!((spec1.h(), spec1.q()), (5, 3));
        let spec2 = f.topo.path_spec(&f.path2);
        assert_eq!((spec2.h(), spec2.q()), (5, 2)); // R5→E2 is VT-EDF
                                                    // Ψ = 8 ms per hop either way.
        assert_eq!(spec1.d_tot(), Nanos::from_millis(40));
    }

    #[test]
    fn paths_share_the_core() {
        let f = build(Setting::RateOnly);
        let shared: Vec<_> = f.path1.iter().filter(|l| f.path2.contains(l)).collect();
        assert_eq!(shared.len(), 3); // R2→R3, R3→R4, R4→R5
    }
}
