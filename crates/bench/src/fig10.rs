//! Figure 10 — flow blocking rates under dynamic arrivals/departures.
//!
//! Flows arrive as a Poisson process from both sources (S1 and S2),
//! hold for an exponential time with mean 200 s (§5), and request either
//! per-flow service or membership in the delay service class. Three
//! schemes are compared as the offered load grows:
//!
//! * **per-flow BB/VTRS** — reserves each flow's minimal rate; lowest
//!   blocking;
//! * **Aggr BB/VTRS, contingency period bounding** — every join/leave
//!   holds peak-rate contingency bandwidth for the worst-case period
//!   τ̂ (eq. 17), which grows with the aggregate — highest blocking;
//! * **Aggr BB/VTRS, contingency feedback** — the edge conditioner
//!   (here its fluid model, [`bb_core::edge_model::FluidEdge`]) reports
//!   the buffer drain, releasing contingency within ~a second — blocking
//!   between the other two, converging with them near saturation.
//!
//! Each point averages the paper's 5 independent runs (seeds 0–4).

use std::collections::HashMap;

use bb_core::admission::aggregate::ClassSpec;
use bb_core::contingency::ContingencyPolicy;
use bb_core::edge_model::FluidEdge;
use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use qos_units::{Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;
use workload::arrivals::{FlowEventKind, FlowProcess};
use workload::profiles::type0;

use crate::figure8::{build, Setting};

/// The admission scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingScheme {
    /// Per-flow BB/VTRS.
    PerFlow,
    /// Aggregate BB/VTRS, theoretical contingency-period bounding.
    AggrBounding,
    /// Aggregate BB/VTRS, contingency feedback from the edge.
    AggrFeedback,
}

impl BlockingScheme {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BlockingScheme::PerFlow => "Per-flow BB/VTRS",
            BlockingScheme::AggrBounding => "Aggr BB/VTRS (bounding)",
            BlockingScheme::AggrFeedback => "Aggr BB/VTRS (feedback)",
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Aggregate flow arrival rates (flows/second) to sweep.
    pub arrival_rates: Vec<f64>,
    /// Mean flow holding time (the paper uses 200 s).
    pub mean_holding: Nanos,
    /// Simulated horizon per run.
    pub horizon: Time,
    /// Seeds, one run each (the paper averages 5).
    pub seeds: Vec<u64>,
    /// End-to-end delay requirement / class bound.
    pub d_req: Nanos,
    /// Class delay parameter (delay-based hops only; harmless in the
    /// rate-based setting used here).
    pub cd: Nanos,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            arrival_rates: vec![0.075, 0.1, 0.125, 0.15, 0.2, 0.25, 0.3, 0.4],
            mean_holding: Nanos::from_secs(200),
            horizon: Time::from_secs_f64(4_000.0),
            seeds: vec![0, 1, 2, 3, 4],
            d_req: Nanos::from_millis(2_440),
            cd: Nanos::from_millis(240),
        }
    }
}

/// One curve: (arrival rate, mean blocking fraction) pairs.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Scheme label.
    pub label: &'static str,
    /// `(arrival_rate_per_sec, blocking_probability)` points.
    pub points: Vec<(f64, f64)>,
}

/// Runs the full sweep for all three schemes.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Curve> {
    [
        BlockingScheme::PerFlow,
        BlockingScheme::AggrBounding,
        BlockingScheme::AggrFeedback,
    ]
    .into_iter()
    .map(|scheme| Curve {
        label: scheme.label(),
        points: cfg
            .arrival_rates
            .iter()
            .map(|rate| {
                let mut blocked = 0u64;
                let mut offered = 0u64;
                for seed in &cfg.seeds {
                    let (o, b) = run_once(scheme, cfg, *seed, *rate);
                    offered += o;
                    blocked += b;
                }
                (*rate, blocked as f64 / offered.max(1) as f64)
            })
            .collect(),
    })
    .collect()
}

/// One seeded run; returns (offered, blocked).
fn run_once(scheme: BlockingScheme, cfg: &Config, seed: u64, rate: f64) -> (u64, u64) {
    let f8 = build(Setting::RateOnly);
    let contingency = match scheme {
        BlockingScheme::AggrBounding => ContingencyPolicy::Bounding,
        _ => ContingencyPolicy::Feedback,
    };
    let mut broker = Broker::new(
        f8.topo,
        BrokerConfig {
            contingency,
            classes: vec![ClassSpec {
                id: 0,
                d_req: cfg.d_req,
                cd: cfg.cd,
            }],
            ..BrokerConfig::default()
        },
    );
    let paths = [
        broker.register_route(&f8.path1),
        broker.register_route(&f8.path2),
    ];
    let process = FlowProcess::generate(seed, rate, cfg.mean_holding, cfg.horizon, 2);
    let profile = type0();

    // Fluid edge models, one per macroflow (feedback scheme only).
    let mut edges: HashMap<FlowId, (FluidEdge, Rate)> = HashMap::new(); // (model, Σρ)
    let mut admitted: HashMap<FlowId, usize> = HashMap::new(); // flow → source
    let (mut offered, mut blocked) = (0u64, 0u64);

    for ev in process.events() {
        let now = ev.at;
        // Contingency lifecycle before handling the event.
        broker.tick(now);
        if scheme == BlockingScheme::AggrFeedback {
            drain_edges(&mut broker, &mut edges, now);
        }
        match ev.kind {
            FlowEventKind::Arrival => {
                offered += 1;
                let service = match scheme {
                    BlockingScheme::PerFlow => ServiceKind::PerFlow,
                    _ => ServiceKind::Class(0),
                };
                let req = FlowRequest {
                    flow: ev.flow,
                    profile,
                    d_req: cfg.d_req,
                    service,
                    path: paths[ev.source],
                };
                match broker.request(now, &req) {
                    Ok(res) => {
                        admitted.insert(ev.flow, ev.source);
                        if scheme == BlockingScheme::AggrFeedback {
                            on_join(&broker, &mut edges, now, res.conditioned_flow, &profile);
                        }
                    }
                    Err(_) => blocked += 1,
                }
            }
            FlowEventKind::Departure => {
                if admitted.remove(&ev.flow).is_none() {
                    continue; // was blocked on arrival
                }
                let res = broker.release(now, ev.flow).expect("admitted flow");
                if scheme == BlockingScheme::AggrFeedback {
                    if let Some(res) = res {
                        on_leave(&broker, &mut edges, now, res.conditioned_flow, &profile);
                    }
                }
            }
        }
    }
    (offered, blocked)
}

/// Releases contingency for macroflows whose fluid buffer has drained by
/// `now`, mirroring the edge → BB feedback message.
fn drain_edges(broker: &mut Broker, edges: &mut HashMap<FlowId, (FluidEdge, Rate)>, now: Time) {
    let ids: Vec<FlowId> = edges.keys().copied().collect();
    for id in ids {
        let Some(state) = broker.macroflow_by_id(id) else {
            edges.remove(&id);
            continue;
        };
        if state.contingency.is_empty() {
            continue;
        }
        let (edge, _) = edges.get_mut(&id).expect("iterating known ids");
        if let Some(at) = edge.empty_at() {
            if at <= now {
                edge.advance(at);
                broker.edge_buffer_empty(at, id);
                let service = broker
                    .macroflow_by_id(id)
                    .map_or(Rate::ZERO, |m| m.allocated());
                let (edge, _) = edges.get_mut(&id).expect("still present");
                edge.set_service(at, service);
            }
        }
    }
}

/// Updates the fluid model after a join: the new microflow's sustained
/// rate joins the aggregate arrival, it may dump its bucket as an initial
/// burst, and the shaping rate becomes the macroflow's new allocation.
fn on_join(
    broker: &Broker,
    edges: &mut HashMap<FlowId, (FluidEdge, Rate)>,
    now: Time,
    macroflow: FlowId,
    profile: &TrafficProfile,
) {
    let allocated = broker
        .macroflow_by_id(macroflow)
        .map_or(Rate::ZERO, |m| m.allocated());
    let entry = edges
        .entry(macroflow)
        .or_insert_with(|| (FluidEdge::new(now), Rate::ZERO));
    entry.1 = entry.1.saturating_add(profile.rho);
    entry.0.set_arrival(now, entry.1);
    entry.0.add_burst(now, profile.sigma);
    entry.0.set_service(now, allocated);
}

/// Updates the fluid model after a leave (allocation is unchanged during
/// the leave transient; only the arrival rate drops).
fn on_leave(
    broker: &Broker,
    edges: &mut HashMap<FlowId, (FluidEdge, Rate)>,
    now: Time,
    macroflow: FlowId,
    profile: &TrafficProfile,
) {
    let Some(entry) = edges.get_mut(&macroflow) else {
        return;
    };
    entry.1 = entry.1.saturating_sub(profile.rho);
    entry.0.set_arrival(now, entry.1);
    let allocated = broker
        .macroflow_by_id(macroflow)
        .map_or(Rate::ZERO, |m| m.allocated());
    entry.0.set_service(now, allocated);
}

/// Renders the curves as CSV.
#[must_use]
pub fn render(curves: &[Curve]) -> String {
    let mut out = String::from("arrival_rate_per_s");
    for c in curves {
        out.push(',');
        out.push_str(c.label);
    }
    out.push('\n');
    let n = curves.first().map_or(0, |c| c.points.len());
    for i in 0..n {
        out.push_str(&format!("{:.3}", curves[0].points[i].0));
        for c in curves {
            out.push_str(&format!(",{:.4}", c.points[i].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced sweep that still shows the paper's ordering and
    /// convergence (full parameters run in the `fig10` binary).
    fn small_config() -> Config {
        Config {
            arrival_rates: vec![0.1, 0.2, 0.4],
            horizon: Time::from_secs_f64(2_000.0),
            seeds: vec![0, 1, 2],
            ..Config::default()
        }
    }

    #[test]
    fn reproduces_figure10_ordering() {
        let curves = run(&small_config());
        let (pf, bound, feed) = (&curves[0], &curves[1], &curves[2]);
        for i in 0..pf.points.len() {
            let (p, b, f) = (pf.points[i].1, bound.points[i].1, feed.points[i].1);
            assert!(
                p <= f + 0.02,
                "per-flow ({p}) should not block more than feedback ({f}) at point {i}"
            );
            assert!(
                f <= b + 0.02,
                "feedback ({f}) should not block more than bounding ({b}) at point {i}"
            );
        }
        // Blocking grows with load for every scheme.
        for c in &curves {
            assert!(c.points.last().unwrap().1 > c.points[0].1);
        }
        // Bounding is clearly worse than per-flow at moderate load…
        assert!(bound.points[0].1 > pf.points[0].1);
        // …and the schemes converge near saturation (relative gap closes).
        let gap_lo = bound.points[0].1 - pf.points[0].1;
        let rel_lo = gap_lo / bound.points[0].1.max(1e-9);
        let gap_hi = bound.points.last().unwrap().1 - pf.points.last().unwrap().1;
        let rel_hi = gap_hi / bound.points.last().unwrap().1.max(1e-9);
        assert!(
            rel_hi < rel_lo,
            "relative gap should shrink: {rel_lo:.3} → {rel_hi:.3}"
        );
    }

    #[test]
    fn render_emits_csv_rows() {
        let cfg = Config {
            arrival_rates: vec![0.1, 0.3],
            horizon: Time::from_secs_f64(500.0),
            seeds: vec![0],
            ..Config::default()
        };
        let curves = run(&cfg);
        let s = render(&curves);
        let mut lines = s.lines();
        assert!(lines.next().unwrap().starts_with("arrival_rate_per_s,"));
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = Config {
            arrival_rates: vec![0.15],
            horizon: Time::from_secs_f64(1_000.0),
            seeds: vec![7],
            ..Config::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points, y.points);
        }
    }
}
