//! Table 2 — maximum number of calls admitted.
//!
//! Type-0 flows with infinite lifetimes are offered one at a time on the
//! S1 → D1 path until the first rejection, under each of the paper's
//! schemes: IntServ/GS (hop-by-hop, WFQ reference), per-flow BB/VTRS
//! (path-oriented §3 algorithms), and aggregate BB/VTRS (class-based §4,
//! with the class delay parameter `cd` swept over {0.10, 0.24, 0.50} s).
//! Because lifetimes are infinite, each join's contingency period is
//! allowed to lapse before the next arrival (the paper notes this
//! masking effect explicitly).

use bb_core::admission::aggregate::ClassSpec;
use bb_core::contingency::ContingencyPolicy;
use bb_core::intserv::IntServ;
use bb_core::{Broker, BrokerConfig, FlowRequest, Reservation, ServiceKind};
use qos_units::{Nanos, Time};
use vtrs::packet::FlowId;
use workload::profiles::type0;

use crate::figure8::{build, Setting};

/// One admission-scheme row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// IntServ Guaranteed Service, hop-by-hop.
    IntServGs,
    /// Per-flow BB/VTRS (path-oriented).
    PerFlowBb,
    /// Aggregate BB/VTRS with the given fixed class delay `cd`.
    AggrBb {
        /// The class delay parameter, in milliseconds.
        cd_ms: u64,
    },
}

impl Scheme {
    /// Row label as printed.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Scheme::IntServGs => "IntServ/GS".to_owned(),
            Scheme::PerFlowBb => "Per-flow BB/VTRS".to_owned(),
            Scheme::AggrBb { cd_ms } => {
                format!("Aggr BB/VTRS cd={:.2}", cd_ms as f64 / 1000.0)
            }
        }
    }
}

/// Counts the calls admitted under `scheme` in `setting` at delay bound
/// `d_req`.
#[must_use]
pub fn calls_admitted(scheme: Scheme, setting: Setting, d_req: Nanos) -> u64 {
    let f8 = build(setting);
    let profile = type0();
    match scheme {
        Scheme::IntServGs => {
            let mut is = IntServ::new(&f8.topo);
            let route: Vec<usize> = f8.path1.iter().map(|l| l.0).collect();
            let mut n = 0u64;
            while is
                .request(Time::ZERO, FlowId(n), &profile, d_req, &route)
                .is_ok()
            {
                n += 1;
                assert!(n <= 100, "runaway admission");
            }
            n
        }
        Scheme::PerFlowBb => {
            let mut broker = Broker::new(f8.topo, BrokerConfig::default());
            let pid = broker.register_route(&f8.path1);
            let mut n = 0u64;
            while broker
                .request(
                    Time::ZERO,
                    &FlowRequest {
                        flow: FlowId(n),
                        profile,
                        d_req,
                        service: ServiceKind::PerFlow,
                        path: pid,
                    },
                )
                .is_ok()
            {
                n += 1;
                assert!(n <= 100, "runaway admission");
            }
            n
        }
        Scheme::AggrBb { cd_ms } => {
            let mut broker = Broker::new(
                f8.topo,
                BrokerConfig {
                    contingency: ContingencyPolicy::Bounding,
                    classes: vec![ClassSpec {
                        id: 0,
                        d_req,
                        cd: Nanos::from_millis(cd_ms),
                    }],
                    ..BrokerConfig::default()
                },
            );
            let pid = broker.register_route(&f8.path1);
            let mut now = Time::ZERO;
            let mut n = 0u64;
            loop {
                let res: Result<Reservation, _> = broker.request(
                    now,
                    &FlowRequest {
                        flow: FlowId(n),
                        profile,
                        d_req,
                        service: ServiceKind::Class(0),
                        path: pid,
                    },
                );
                match res {
                    Ok(r) => {
                        n += 1;
                        assert!(n <= 100, "runaway admission");
                        // Infinite lifetimes: let the contingency period
                        // lapse before the next arrival.
                        if let Some(exp) = r.contingency_expires {
                            now = exp + Nanos::from_nanos(1);
                            broker.tick(now);
                        }
                    }
                    Err(_) => break,
                }
            }
            n
        }
    }
}

/// A full Table-2 result: rows × (setting, bound) columns.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// `(scheme, [rate@2.44, rate@2.19, mixed@2.44, mixed@2.19])`.
    pub rows: Vec<(Scheme, [u64; 4])>,
}

/// The bounds used by §5 for type-0 flows.
#[must_use]
pub fn bounds() -> [Nanos; 2] {
    [Nanos::from_millis(2_440), Nanos::from_millis(2_190)]
}

/// Runs the complete experiment.
#[must_use]
pub fn run() -> Table2 {
    let schemes = [
        Scheme::IntServGs,
        Scheme::PerFlowBb,
        Scheme::AggrBb { cd_ms: 100 },
        Scheme::AggrBb { cd_ms: 240 },
        Scheme::AggrBb { cd_ms: 500 },
    ];
    let [loose, tight] = bounds();
    let cells = |s: Scheme| {
        [
            calls_admitted(s, Setting::RateOnly, loose),
            calls_admitted(s, Setting::RateOnly, tight),
            calls_admitted(s, Setting::Mixed, loose),
            calls_admitted(s, Setting::Mixed, tight),
        ]
    };
    Table2 {
        rows: schemes.into_iter().map(|s| (s, cells(s))).collect(),
    }
}

/// Renders the table in the paper's layout.
#[must_use]
pub fn render(t: &Table2) -> String {
    let mut out = String::new();
    out.push_str("Table 2: number of calls admitted\n");
    out.push_str("                         | Rate-Based Only | Mixed Rate/Delay\n");
    out.push_str("Scheme                   |  2.44s   2.19s  |  2.44s   2.19s\n");
    out.push_str("-------------------------+-----------------+-----------------\n");
    for (scheme, c) in &t.rows {
        out.push_str(&format!(
            "{:<25}|  {:>5}   {:>5}  |  {:>5}   {:>5}\n",
            scheme.label(),
            c[0],
            c[1],
            c[2],
            c[3]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Table 2, cell by cell, against the paper.
    #[test]
    fn reproduces_the_paper_exactly() {
        let t = run();
        let expected: Vec<(Scheme, [u64; 4])> = vec![
            (Scheme::IntServGs, [30, 27, 30, 27]),
            (Scheme::PerFlowBb, [30, 27, 30, 27]),
            (Scheme::AggrBb { cd_ms: 100 }, [29, 29, 29, 29]),
            (Scheme::AggrBb { cd_ms: 240 }, [29, 29, 29, 29]),
            (Scheme::AggrBb { cd_ms: 500 }, [29, 29, 29, 28]),
        ];
        for ((scheme, got), (escheme, want)) in t.rows.iter().zip(&expected) {
            assert_eq!(scheme, escheme);
            assert_eq!(
                got,
                want,
                "{}: got {:?}, paper says {:?}",
                scheme.label(),
                got,
                want
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let t = run();
        let s = render(&t);
        assert!(s.contains("IntServ/GS"));
        assert!(s.contains("Aggr BB/VTRS cd=0.50"));
    }
}
