//! # bbqos — a bandwidth broker for scalable guaranteed services
//!
//! A complete implementation of the architecture from *"Decoupling QoS
//! Control from Core Routers: A Novel Bandwidth Broker Architecture for
//! Scalable Support of Guaranteed Services"* (Zhang, Duan, Gao & Hou,
//! ACM SIGCOMM 2000), including every substrate the paper depends on:
//!
//! * [`units`] — exact fixed-point QoS arithmetic (ns / bps / bits);
//! * [`vtrs`] — the Virtual Time Reference System data-plane abstraction:
//!   dynamic packet state, edge conditioning, per-hop virtual time, and
//!   the closed-form end-to-end delay bounds;
//! * [`sched`] — core-stateless schedulers (C̄SVC, CJVC, VT-EDF) and the
//!   stateful baselines (VC, WFQ, RC-EDF, FIFO);
//! * [`netsim`] — a deterministic packet-level discrete-event simulator;
//! * [`broker`] — **the contribution**: the bandwidth broker holding all
//!   QoS state (flow/node/path MIBs), path-oriented admission control
//!   for per-flow and class-based guaranteed services, contingency
//!   bandwidth for dynamic flow aggregation, and the IntServ/GS
//!   hop-by-hop baseline;
//! * [`workload`] — Table-1 traffic profiles and seeded flow processes.
//!
//! ## Quickstart
//!
//! ```
//! use bbqos::broker::{Broker, BrokerConfig, FlowRequest, ServiceKind};
//! use bbqos::netsim::topology::{SchedulerSpec, TopologyBuilder};
//! use bbqos::units::{Bits, Nanos, Rate, Time};
//! use bbqos::vtrs::packet::FlowId;
//! use bbqos::vtrs::profile::TrafficProfile;
//!
//! // A 3-hop domain: two CsVC links and one VT-EDF link.
//! let mut b = TopologyBuilder::new();
//! let (i, r1, r2, e) = (b.node("I"), b.node("R1"), b.node("R2"), b.node("E"));
//! let cap = Rate::from_mbps(10);
//! let lmax = Bits::from_bytes(1500);
//! b.link(i, r1, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
//! b.link(r1, r2, cap, Nanos::ZERO, SchedulerSpec::VtEdf, lmax);
//! b.link(r2, e, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
//! let topo = b.build();
//!
//! // The broker imports the topology; core routers keep no QoS state.
//! let mut broker = Broker::new(topo, BrokerConfig::default());
//! let path = broker.path_between(i, e).expect("reachable");
//!
//! // Admit a flow with a 600 ms end-to-end delay requirement.
//! let reservation = broker
//!     .request(
//!         Time::ZERO,
//!         &FlowRequest {
//!             flow: FlowId(1),
//!             profile: TrafficProfile::new(
//!                 Bits::from_bits(60_000),
//!                 Rate::from_bps(50_000),
//!                 Rate::from_bps(100_000),
//!                 lmax,
//!             )
//!             .unwrap(),
//!             d_req: Nanos::from_millis(600),
//!             service: ServiceKind::PerFlow,
//!             path,
//!         },
//!     )
//!     .expect("admissible");
//! assert!(reservation.rate >= Rate::from_bps(50_000));
//! ```

#![forbid(unsafe_code)]

pub use bb_core as broker;
pub use netsim;
pub use qos_units as units;
pub use sched;
pub use vtrs;
pub use workload;
